/**
 * @file
 * JSON writer tests: nesting, commas, escaping, numeric formats.
 */

#include <gtest/gtest.h>

#include "harness/json.hpp"

namespace espnuca {
namespace {

TEST(JsonWriter, EmptyObject)
{
    JsonWriter w;
    w.beginObject().endObject();
    EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriter, EmptyArray)
{
    JsonWriter w;
    w.beginArray().endArray();
    EXPECT_EQ(w.str(), "[]");
}

TEST(JsonWriter, SimpleFields)
{
    JsonWriter w;
    w.beginObject();
    w.field("a", std::uint64_t{1});
    w.field("b", "two");
    w.field("c", true);
    w.endObject();
    EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":true})");
}

TEST(JsonWriter, ArrayOfValues)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::uint64_t{1});
    w.value(std::uint64_t{2});
    w.value("x");
    w.endArray();
    EXPECT_EQ(w.str(), R"([1,2,"x"])");
}

TEST(JsonWriter, NestedContainers)
{
    JsonWriter w;
    w.beginObject();
    w.key("list").beginArray();
    w.beginObject().field("k", std::uint64_t{7}).endObject();
    w.beginObject().field("k", std::uint64_t{8}).endObject();
    w.endArray();
    w.field("after", std::uint64_t{9});
    w.endObject();
    EXPECT_EQ(w.str(), R"({"list":[{"k":7},{"k":8}],"after":9})");
}

TEST(JsonWriter, StringEscaping)
{
    JsonWriter w;
    w.beginObject();
    w.field("s", std::string("a\"b\\c\nd\te"));
    w.endObject();
    EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, DoubleFormatting)
{
    JsonWriter w;
    w.beginArray();
    w.value(1.5);
    w.value(0.0);
    w.endArray();
    EXPECT_EQ(w.str(), "[1.5,0]");
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::nan(""));
    w.endArray();
    EXPECT_EQ(w.str(), "[null]");
}

} // namespace
} // namespace espnuca
