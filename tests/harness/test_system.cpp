/**
 * @file
 * System-assembly tests: warmup semantics, custom trace sources, and
 * measured-window accounting.
 */

#include <gtest/gtest.h>

#include <deque>

#include "harness/system.hpp"

namespace espnuca {
namespace {

TEST(System, WarmupResetsStatistics)
{
    SystemConfig cfg;
    const Workload wl = makeWorkload("gzip-4", cfg, 20'000, 1);
    System cold(cfg, "shared", wl, 1, /*warmup=*/0.0);
    const RunResult rc = cold.run();
    System warm(cfg, "shared", makeWorkload("gzip-4", cfg, 20'000, 1),
                1, /*warmup=*/0.5);
    const RunResult rw = warm.run();
    // The measured window excludes warmup: fewer instructions counted,
    // and the compulsory-miss storm is gone.
    EXPECT_LT(rw.instructions, rc.instructions);
    EXPECT_LT(rw.offChipAccesses, rc.offChipAccesses);
    EXPECT_GT(rw.instructions, rc.instructions / 3);
}

TEST(System, WarmupDoesNotChangeFinalState)
{
    // Warmup only moves the statistics boundary; the simulated history
    // (and hence the cache end state) is identical.
    SystemConfig cfg;
    System a(cfg, "esp-nuca", makeWorkload("apache", cfg, 10'000, 3), 3,
             0.0);
    System b(cfg, "esp-nuca", makeWorkload("apache", cfg, 10'000, 3), 3,
             0.5);
    const RunResult ra = a.run();
    const RunResult rb = b.run();
    EXPECT_EQ(a.eq().now(), b.eq().now());
    EXPECT_EQ(a.protocol().dir().raw().size(),
              b.protocol().dir().raw().size());
    (void)ra;
    (void)rb;
}

/** Fixed-list source for the custom-sources constructor. */
class ListSource : public TraceSource
{
  public:
    explicit ListSource(std::deque<TraceOp> ops) : ops_(std::move(ops)) {}

    bool
    next(TraceOp &op) override
    {
        if (ops_.empty())
            return false;
        op = ops_.front();
        ops_.pop_front();
        return true;
    }

  private:
    std::deque<TraceOp> ops_;
};

TEST(System, CustomSourcesDriveSelectedCores)
{
    SystemConfig cfg;
    std::vector<std::unique_ptr<TraceSource>> sources(cfg.numCores);
    std::deque<TraceOp> ops;
    for (int i = 0; i < 200; ++i)
        ops.push_back({2, AccessType::Load,
                       0x100000 + static_cast<Addr>(i) * 64, false});
    sources[3] = std::make_unique<ListSource>(ops);
    System sys(cfg, "shared", "custom", std::move(sources), 1);
    const RunResult r = sys.run();
    EXPECT_EQ(r.memOps, 200u);
    EXPECT_GT(sys.coreIpc(3), 0.0);
    EXPECT_EQ(sys.coreIpc(0), 0.0);
    EXPECT_EQ(r.workload, "custom");
}

TEST(System, PerCoreIpcMatchesAggregate)
{
    SystemConfig cfg;
    const Workload wl = makeWorkload("apache", cfg, 5'000, 2);
    System sys(cfg, "shared", wl, 2);
    const RunResult r = sys.run();
    double sum = 0.0;
    int active = 0;
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        if (sys.coreIpc(c) > 0.0) {
            sum += sys.coreIpc(c);
            ++active;
        }
    }
    ASSERT_GT(active, 0);
    EXPECT_NEAR(r.avgIpc, sum / active, 1e-9);
}

TEST(System, SimulateHelperMatchesManualAssembly)
{
    SystemConfig cfg;
    const RunResult a = simulate(cfg, "sp-nuca", "CG", 5'000, 11, 0.3);
    const Workload wl = makeWorkload("CG", cfg, 5'000, 11);
    System sys(cfg, "sp-nuca", wl, 11, 0.3);
    const RunResult b = sys.run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.offChipAccesses, b.offChipAccesses);
}

} // namespace
} // namespace espnuca
