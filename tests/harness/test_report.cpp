/**
 * @file
 * Result serialization tests (JSON + CSV round out the public API).
 */

#include <gtest/gtest.h>

#include "harness/report.hpp"

namespace espnuca {
namespace {

RunResult
sample()
{
    RunResult r;
    r.arch = "esp-nuca";
    r.workload = "apache";
    r.cycles = 1000;
    r.instructions = 5000;
    r.memOps = 1200;
    r.throughput = 5.0;
    r.avgIpc = 0.6;
    r.avgAccessTime = 12.5;
    r.offChipAccesses = 42;
    r.onChipLatency = 30.5;
    r.levelCounts[0] = 900;
    r.levelContribution[0] = 2.5;
    return r;
}

TEST(Report, JsonContainsHeadlineFields)
{
    const std::string j = runToJson(sample());
    EXPECT_NE(j.find("\"arch\":\"esp-nuca\""), std::string::npos);
    EXPECT_NE(j.find("\"workload\":\"apache\""), std::string::npos);
    EXPECT_NE(j.find("\"cycles\":1000"), std::string::npos);
    EXPECT_NE(j.find("\"off_chip_accesses\":42"), std::string::npos);
    EXPECT_NE(j.find("\"service_levels\""), std::string::npos);
    EXPECT_NE(j.find("\"local-l1\""), std::string::npos);
}

TEST(Report, JsonBalancedBraces)
{
    const std::string j = runToJson(sample());
    int depth = 0;
    for (char c : j) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Report, CsvRowMatchesHeaderArity)
{
    const std::string header = csvHeader();
    const std::string row = runToCsv(sample());
    const auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header), count(row));
    EXPECT_EQ(row.substr(0, 8), "esp-nuca");
}

TEST(Report, PointJsonCarriesCi)
{
    DataPoint p;
    p.arch = "shared";
    p.workload = "CG";
    p.throughput.record(1.0);
    p.throughput.record(2.0);
    JsonWriter w;
    writePointJson(w, p);
    const std::string j = w.str();
    EXPECT_NE(j.find("\"mean\":1.5"), std::string::npos);
    EXPECT_NE(j.find("\"runs\":2"), std::string::npos);
    EXPECT_NE(j.find("\"ci95\""), std::string::npos);
}

} // namespace
} // namespace espnuca
