/**
 * @file
 * Supervision-layer tests: the heartbeat and quarantine wire formats
 * round-trip, and the Supervisor itself — driven against /bin/sh fake
 * workers so no simulation is involved — restarts dead workers,
 * SIGKILLs stalled ones, charges organic deaths to the in-flight
 * point, quarantines a point at the death threshold (which is what
 * lets the restarted worker finally complete), and gives up cleanly
 * when a shard exhausts its restart budget.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "harness/supervisor.hpp"

namespace espnuca {
namespace {

std::string
freshDir(const std::string &name)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("espnuca_sup_" + name + "_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

TEST(HeartbeatFormat, RoundTrips)
{
    Heartbeat hb;
    hb.pid = 1234;
    hb.seq = 9;
    hb.state = "point-start";
    hb.pointHash = 0xABCDEF0123456789ULL;
    hb.index = 4;
    hb.arch = "esp-nuca";
    hb.workload = "apache";
    hb.done = 2;
    hb.total = 5;

    Heartbeat back;
    ASSERT_TRUE(parseHeartbeat(heartbeatJson(hb), back));
    EXPECT_EQ(back.pid, hb.pid);
    EXPECT_EQ(back.seq, hb.seq);
    EXPECT_EQ(back.state, hb.state);
    EXPECT_EQ(back.pointHash, hb.pointHash);
    EXPECT_EQ(back.index, hb.index);
    EXPECT_EQ(back.arch, hb.arch);
    EXPECT_EQ(back.workload, hb.workload);
    EXPECT_EQ(back.done, hb.done);
    EXPECT_EQ(back.total, hb.total);
}

TEST(HeartbeatFormat, RejectsMalformation)
{
    Heartbeat out;
    EXPECT_FALSE(parseHeartbeat("", out));
    EXPECT_FALSE(parseHeartbeat("{\"schema\":\"bogus\"}", out));
    Heartbeat hb;
    hb.state = "start";
    const std::string good = heartbeatJson(hb);
    EXPECT_TRUE(parseHeartbeat(good, out));
    // A torn (half-written) heartbeat parses as false, not garbage.
    EXPECT_FALSE(parseHeartbeat(good.substr(0, good.size() / 2), out));
}

TEST(HeartbeatFormat, WriterBumpsSequenceAndPid)
{
    const std::string dir = freshDir("hbwrite");
    const std::string path = dir + "/hb.json";
    Heartbeat hb;
    hb.state = "start";
    writeHeartbeat(path, hb);
    writeHeartbeat(path, hb);
    EXPECT_EQ(hb.seq, 2u);
    EXPECT_EQ(hb.pid, static_cast<std::uint64_t>(::getpid()));
    std::ifstream in(path);
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    Heartbeat back;
    ASSERT_TRUE(parseHeartbeat(doc, back));
    EXPECT_EQ(back.seq, 2u);
    std::filesystem::remove_all(dir);
}

TEST(QuarantineFormat, RoundTrips)
{
    const std::string dir = freshDir("qfmt");
    EXPECT_TRUE(readQuarantine(dir).empty()); // absent file = empty

    std::vector<QuarantineRecord> records(2);
    records[0].hash = 0x00000000000000AAULL;
    records[0].index = 7;
    records[0].arch = "esp-nuca";
    records[0].workload = "apache";
    records[0].deaths = 3;
    records[0].error = "shard 0 pid 11 died on signal 11";
    records[1].hash = 0x1111111111111111ULL;
    records[1].index = 2;
    records[1].arch = "shared";
    records[1].workload = "oltp";
    records[1].deaths = 5;
    records[1].error = "stalled";
    ASSERT_TRUE(writeQuarantine(dir, records));

    const std::vector<QuarantineRecord> back = readQuarantine(dir);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].hash, records[0].hash);
    EXPECT_EQ(back[0].index, records[0].index);
    EXPECT_EQ(back[0].arch, records[0].arch);
    EXPECT_EQ(back[0].workload, records[0].workload);
    EXPECT_EQ(back[0].deaths, records[0].deaths);
    EXPECT_EQ(back[0].error, records[0].error);
    EXPECT_EQ(back[1].hash, records[1].hash);
    EXPECT_EQ(back[1].deaths, records[1].deaths);
    std::filesystem::remove_all(dir);
}

TEST(QuarantineFormat, MalformedFileThrows)
{
    const std::string dir = freshDir("qbad");
    {
        std::ofstream out(quarantinePath(dir));
        out << "{\"schema\":\"bogus\"}\n";
    }
    EXPECT_THROW(readQuarantine(dir), PointFileError);
    {
        std::ofstream out(quarantinePath(dir),
                          std::ios::binary | std::ios::trunc);
        out << "{\"schema\":\"espnuca-quarantine-v1\",\"points\":"
               "[{\"point_hash\":\"zz\"}]}\n";
    }
    EXPECT_THROW(readQuarantine(dir), PointFileError);
    std::filesystem::remove_all(dir);
}

TEST(JsonArrayItems, SplitsTopLevelElements)
{
    const std::vector<std::string> items =
        jsonArrayItems("[{\"a\":[1,2]},\"s,t\",3,{\"b\":\"}\"}]");
    ASSERT_EQ(items.size(), 4u);
    EXPECT_EQ(items[0], "{\"a\":[1,2]}");
    EXPECT_EQ(items[1], "\"s,t\"");
    EXPECT_EQ(items[2], "3");
    EXPECT_EQ(items[3], "{\"b\":\"}\"}");
    EXPECT_TRUE(jsonArrayItems("[]").empty());
    EXPECT_TRUE(jsonArrayItems("").empty());
}

// ------------------------------------------------------------------
// Supervisor end-to-end against /bin/sh fake workers. The supervisor
// appends `--shard i/N --results-dir DIR --heartbeat HB`, so with
// workerCmd = {sh, -c, SCRIPT, worker} the script sees $2=i/N $4=DIR
// $6=HB.
// ------------------------------------------------------------------

SupervisorOptions
fastOpts(const std::string &dir, const std::string &script)
{
    SupervisorOptions o;
    o.resultsDir = dir;
    o.workerCmd = {"/bin/sh", "-c", script, "worker"};
    o.shards = 1;
    o.pollMs = 5;
    o.backoffBaseMs = 1;
    o.backoffCapMs = 20;
    o.verbose = false;
    return o;
}

TEST(Supervisor, CleanWorkerCompletes)
{
    const std::string dir = freshDir("clean");
    Supervisor sup(fastOpts(dir, "exit 0"));
    EXPECT_EQ(sup.run(), 0);
    EXPECT_TRUE(sup.failures().empty());
    EXPECT_TRUE(sup.quarantine().empty());
    std::filesystem::remove_all(dir);
}

TEST(Supervisor, CrashingPointIsQuarantinedAndSweepCompletes)
{
    const std::string dir = freshDir("poison");
    // Declare point 0xaa in flight, then die — until the supervisor
    // blacklists it, after which the worker "skips" it and finishes.
    const std::string script = R"(
dir="$4"; hb="$6"
printf '%s\n' '{"schema":"espnuca-heartbeat-v1","pid":1,"seq":1,"state":"point-start","point_hash":"00000000000000aa","index":7,"arch":"esp-nuca","workload":"apache","done":0,"total":1}' > "$hb"
if [ -f "$dir/quarantine.json" ]; then exit 0; fi
exit 9
)";
    SupervisorOptions o = fastOpts(dir, script);
    o.quarantineAfter = 2;
    Supervisor sup(o);
    EXPECT_EQ(sup.run(), 0);

    ASSERT_EQ(sup.quarantine().size(), 1u);
    const QuarantineRecord &q = sup.quarantine()[0];
    EXPECT_EQ(q.hash, 0xAAu);
    EXPECT_EQ(q.index, 7u);
    EXPECT_EQ(q.arch, "esp-nuca");
    EXPECT_EQ(q.workload, "apache");
    EXPECT_EQ(q.deaths, 2u);
    ASSERT_GE(sup.failures().size(), 2u);
    EXPECT_EQ(sup.failures()[0].pointHash, 0xAAu);
    EXPECT_FALSE(sup.failures()[0].chaos);

    // The on-disk blacklist matches what the supervisor reports.
    const std::vector<QuarantineRecord> disk = readQuarantine(dir);
    ASSERT_EQ(disk.size(), 1u);
    EXPECT_EQ(disk[0].hash, 0xAAu);
    std::filesystem::remove_all(dir);
}

TEST(Supervisor, StalledWorkerIsKilledAndCharged)
{
    const std::string dir = freshDir("stall");
    const std::string script = R"(
dir="$4"; hb="$6"
if [ -f "$dir/quarantine.json" ]; then exit 0; fi
printf '%s\n' '{"schema":"espnuca-heartbeat-v1","pid":1,"seq":1,"state":"point-start","point_hash":"00000000000000bb","index":1,"arch":"shared","workload":"oltp","done":0,"total":1}' > "$hb"
sleep 60
)";
    SupervisorOptions o = fastOpts(dir, script);
    o.quarantineAfter = 1;
    o.stallTimeoutMs = 200;
    Supervisor sup(o);
    EXPECT_EQ(sup.run(), 0);
    ASSERT_GE(sup.failures().size(), 1u);
    EXPECT_TRUE(sup.failures()[0].stalled);
    EXPECT_EQ(sup.failures()[0].pointHash, 0xBBu);
    ASSERT_EQ(sup.quarantine().size(), 1u);
    EXPECT_EQ(sup.quarantine()[0].workload, "oltp");
    std::filesystem::remove_all(dir);
}

TEST(Supervisor, RestartBudgetExhaustionFails)
{
    const std::string dir = freshDir("giveup");
    SupervisorOptions o = fastOpts(dir, "exit 3");
    o.maxRestarts = 2;
    Supervisor sup(o);
    EXPECT_EQ(sup.run(), 1);
    EXPECT_EQ(sup.failures().size(), 3u); // initial + 2 restarts
    EXPECT_FALSE(sup.failures()[0].signaled);
    EXPECT_EQ(sup.failures()[0].exitCode, 3);
    EXPECT_TRUE(sup.quarantine().empty());
    std::filesystem::remove_all(dir);
}

TEST(Supervisor, ExecFailureIsBoundedByRestartBudget)
{
    const std::string dir = freshDir("noexec");
    SupervisorOptions o = fastOpts(dir, "");
    o.workerCmd = {"/nonexistent/espnuca-worker-binary"};
    o.maxRestarts = 1;
    Supervisor sup(o);
    EXPECT_EQ(sup.run(), 1);
    ASSERT_GE(sup.failures().size(), 1u);
    EXPECT_EQ(sup.failures()[0].exitCode, 127);
    std::filesystem::remove_all(dir);
}

TEST(Supervisor, TwoShardsCompleteIndependently)
{
    const std::string dir = freshDir("twoshard");
    // Shard 0 succeeds immediately; shard 1 fails once, then succeeds.
    const std::string script = R"(
dir="$4"
case "$2" in
0/2) exit 0 ;;
*) if [ -f "$dir/seen-once" ]; then exit 0; fi; : > "$dir/seen-once"; exit 7 ;;
esac
)";
    SupervisorOptions o = fastOpts(dir, script);
    o.shards = 2;
    Supervisor sup(o);
    EXPECT_EQ(sup.run(), 0);
    ASSERT_EQ(sup.failures().size(), 1u);
    EXPECT_EQ(sup.failures()[0].shard, 1u);
    EXPECT_EQ(sup.failures()[0].exitCode, 7);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace espnuca
