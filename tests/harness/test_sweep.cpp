/**
 * @file
 * Sweep-engine unit tests: shard-spec parsing, stable point hashing
 * and disjoint/complete shard partitioning, the raw-span JSON scanner,
 * verbatim re-framing through JsonWriter::raw, and the point-record
 * round trip espnuca-merge relies on.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "harness/sweep.hpp"

namespace espnuca {
namespace {

TEST(ShardSpec, ParsesWellFormedSpecs)
{
    const ShardSpec a = ShardSpec::parse("0/1");
    EXPECT_EQ(a.index, 0u);
    EXPECT_EQ(a.count, 1u);
    const ShardSpec b = ShardSpec::parse("3/8");
    EXPECT_EQ(b.index, 3u);
    EXPECT_EQ(b.count, 8u);
}

TEST(ShardSpec, RejectsMalformedSpecs)
{
    for (const char *bad : {"", "3", "/4", "3/", "4/4", "5/4", "a/4",
                            "1/b", "1/4/2", "-1/4", "1/ 4"})
        EXPECT_THROW(ShardSpec::parse(bad), std::invalid_argument)
            << bad;
}

ExperimentMatrix
smallMatrix()
{
    ExperimentConfig cfg;
    cfg.opsPerCore = 1000;
    cfg.runs = 1;
    ExperimentMatrix m(cfg);
    for (const char *a : {"shared", "private", "esp-nuca"})
        for (const char *w : {"apache", "gzip-4", "oltp", "CG"})
            m.add(a, w);
    return m;
}

TEST(PointHash, StableAndConfigSensitive)
{
    const ExperimentMatrix m = smallMatrix();
    const auto &e = m.entries().front();
    const std::uint64_t h = pointHash("fig", e);
    EXPECT_EQ(h, pointHash("fig", e)); // pure function
    EXPECT_NE(h, pointHash("other-bench", e));

    ExperimentMatrix::Entry mutated = e;
    mutated.cfg.opsPerCore += 1;
    EXPECT_NE(h, pointHash("fig", mutated));
}

TEST(PointHash, ShardsPartitionTheGridDisjointlyAndCompletely)
{
    const ExperimentMatrix m = smallMatrix();
    for (std::uint32_t count : {1u, 2u, 3u, 5u}) {
        std::set<std::string> seen;
        for (std::uint32_t shard = 0; shard < count; ++shard)
            for (const auto &e : m.entries()) {
                if (pointHash("fig", e) % count == shard) {
                    EXPECT_TRUE(seen.insert(e.key).second)
                        << "point owned by two shards: " << e.key;
                }
            }
        EXPECT_EQ(seen.size(), m.entries().size())
            << "grid not covered with " << count << " shards";
    }
}

// Regression: raw FNV-1a's low bit is the XOR parity of the input
// bytes, and the default point key duplicates (arch, workload), so
// without a finalizing mix every point in a grid hashed to the same
// side of `hash % 2` — shard 1/2 owned nothing. A 2-way split of any
// realistic grid must give both shards work.
TEST(PointHash, TwoWaySplitGivesBothShardsWork)
{
    const ExperimentMatrix m = smallMatrix();
    std::size_t owned[2] = {0, 0};
    for (const auto &e : m.entries())
        ++owned[pointHash("fig", e) % 2];
    EXPECT_GT(owned[0], 0u);
    EXPECT_GT(owned[1], 0u);
}

TEST(JsonSpan, ExtractsScalarsStringsAndContainers)
{
    const std::string doc =
        "{\"a\":1,\"b\":\"x,\\\"}y\",\"c\":{\"a\":99,\"d\":[1,2]},"
        "\"e\":[{\"f\":3}],\"g\":true}";
    EXPECT_EQ(jsonSpan(doc, "a"), "1");
    EXPECT_EQ(jsonSpan(doc, "b"), "\"x,\\\"}y\"");
    EXPECT_EQ(jsonSpan(doc, "c"), "{\"a\":99,\"d\":[1,2]}");
    EXPECT_EQ(jsonSpan(doc, "e"), "[{\"f\":3}]");
    EXPECT_EQ(jsonSpan(doc, "g"), "true");
    EXPECT_EQ(jsonSpan(doc, "missing"), "");
    // "a" nested inside "c" must not shadow the top-level "a", and a
    // key that only exists nested must not be found at the top level.
    EXPECT_EQ(jsonSpan(doc, "d"), "");
    EXPECT_EQ(jsonSpan(doc, "f"), "");
}

TEST(JsonWriterRaw, ReframedSpansAreByteIdentical)
{
    // A value serialized standalone, injected via raw() into a larger
    // document, must re-extract byte-identically — the invariant the
    // whole merge path rests on.
    JsonWriter inner;
    inner.beginObject();
    inner.field("x", std::uint64_t{7});
    inner.field("s", "a\"b");
    inner.endObject();
    const std::string span = inner.str();

    JsonWriter outer;
    outer.beginObject();
    outer.field("head", std::uint64_t{1});
    outer.key("v").raw(span);
    outer.key("arr").beginArray();
    outer.raw(span);
    outer.raw(span);
    outer.endArray();
    outer.endObject();
    const std::string doc = outer.str();

    EXPECT_EQ(jsonSpan(doc, "v"), span);
    EXPECT_EQ(jsonSpan(doc, "arr"), "[" + span + "," + span + "]");
}

TEST(PointRecord, RoundTripsThroughItsFileFormat)
{
    PointRecord rec;
    rec.bench = "fig07_onchip_offchip";
    rec.hash = 0x0123456789abcdefULL;
    rec.index = 4;
    rec.total = 36;
    rec.key = jsonQuote(std::string("esp-nuca\x1f") + "apache");
    rec.arch = jsonQuote("esp-nuca");
    rec.workload = jsonQuote("apache");
    rec.build = "{\"describe\":\"v1\",\"config_digest\":\"00\"}";
    rec.config = "{\"runs\":2}";
    rec.point = "{\"arch\":\"esp-nuca\",\"v\":[1,2]}";

    PointRecord back;
    ASSERT_TRUE(parsePointRecord(pointRecordJson(rec), back));
    EXPECT_EQ(back.bench, rec.bench);
    EXPECT_EQ(back.hash, rec.hash);
    EXPECT_EQ(back.index, rec.index);
    EXPECT_EQ(back.total, rec.total);
    EXPECT_EQ(back.key, rec.key);
    EXPECT_EQ(back.arch, rec.arch);
    EXPECT_EQ(back.workload, rec.workload);
    EXPECT_EQ(back.build, rec.build);
    EXPECT_EQ(back.config, rec.config);
    EXPECT_EQ(back.point, rec.point);
}

TEST(PointRecord, RejectsWrongSchemaAndTruncation)
{
    PointRecord rec;
    rec.bench = "b";
    rec.total = 1;
    rec.key = rec.arch = rec.workload = jsonQuote("x");
    rec.build = rec.config = rec.point = "{}";
    const std::string good = pointRecordJson(rec);

    PointRecord out;
    EXPECT_TRUE(parsePointRecord(good, out));
    EXPECT_FALSE(parsePointRecord("", out));
    EXPECT_FALSE(parsePointRecord("{\"schema\":\"bogus\"}", out));
    EXPECT_FALSE(
        parsePointRecord(good.substr(0, good.size() / 2), out));
}

TEST(ExperimentDigest, TracksResultAffectingKnobsOnly)
{
    ExperimentConfig a;
    ExperimentConfig b = a;
    EXPECT_EQ(experimentConfigDigest(a), experimentConfigDigest(b));

    b.jobs = 13; // scheduling-only: same results, same digest
    b.retryBackoffMs = 50;
    EXPECT_EQ(experimentConfigDigest(a), experimentConfigDigest(b));

    b = a;
    b.baseSeed += 1;
    EXPECT_NE(experimentConfigDigest(a), experimentConfigDigest(b));

    b = a;
    b.system.l2Ways *= 2;
    EXPECT_NE(experimentConfigDigest(a), experimentConfigDigest(b));

    // Phased warmup changes results; the directory path does not.
    b = a;
    b.checkpointDir = "/tmp/x";
    EXPECT_NE(experimentConfigDigest(a), experimentConfigDigest(b));
    ExperimentConfig c = b;
    c.checkpointDir = "/somewhere/else";
    EXPECT_EQ(experimentConfigDigest(b), experimentConfigDigest(c));
}

} // namespace
} // namespace espnuca
