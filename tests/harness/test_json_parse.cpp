/**
 * @file
 * Recursive-descent JSON parser tests (the espnuca-report reader).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "harness/json_parse.hpp"

namespace espnuca {
namespace {

TEST(JsonParse, ScalarsAndNesting)
{
    JsonValue v;
    ASSERT_TRUE(jsonParse(
        R"({"a": 1.5, "b": "text", "c": true, "d": null,
            "e": {"f": [1, 2, {"g": -3e2}]}})",
        v));
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.find("a")->number, 1.5);
    EXPECT_EQ(v.find("a")->text, "1.5"); // source spelling kept
    EXPECT_EQ(v.find("b")->text, "text");
    EXPECT_TRUE(v.find("c")->boolean);
    EXPECT_EQ(v.find("d")->kind, JsonValue::Kind::Null);
    const JsonValue *g = v.path({"e", "f"});
    ASSERT_NE(g, nullptr);
    ASSERT_TRUE(g->isArray());
    ASSERT_EQ(g->items.size(), 3u);
    EXPECT_DOUBLE_EQ(g->items[2].find("g")->number, -300.0);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_EQ(v.path({"e", "missing"}), nullptr);
}

TEST(JsonParse, PrettyPrintedDocument)
{
    // The shape BENCH_core.json is committed in: indented, multi-line.
    JsonValue v;
    ASSERT_TRUE(jsonParse("{\n  \"protocol\": {\n    \"esp_nuca\": {\n"
                          "      \"ns_per_transaction\": 2073.64\n"
                          "    }\n  }\n}\n",
                          v));
    const JsonValue *ns =
        v.path({"protocol", "esp_nuca", "ns_per_transaction"});
    ASSERT_NE(ns, nullptr);
    EXPECT_DOUBLE_EQ(ns->number, 2073.64);
}

TEST(JsonParse, StringEscapes)
{
    JsonValue v;
    ASSERT_TRUE(jsonParse(R"({"s": "a\"b\\c\ndA"})", v));
    EXPECT_EQ(v.find("s")->text, "a\"b\\c\ndA");
}

TEST(JsonParse, MalformedInputsRejected)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(jsonParse("", v, &err));
    EXPECT_FALSE(jsonParse("{", v));
    EXPECT_FALSE(jsonParse("{\"a\":}", v));
    EXPECT_FALSE(jsonParse("[1,]", v)); // the grammar has no trailing comma
    EXPECT_FALSE(jsonParse("{\"a\":1} garbage", v));
    EXPECT_FALSE(jsonParse("{\"a\" 1}", v));
    EXPECT_FALSE(jsonParse("nul", v));
    EXPECT_FALSE(err.empty());
}

TEST(JsonParse, EmptyContainers)
{
    JsonValue v;
    ASSERT_TRUE(jsonParse(R"({"o": {}, "a": []})", v));
    EXPECT_TRUE(v.find("o")->members.empty());
    EXPECT_TRUE(v.find("a")->items.empty());
}

TEST(JsonParse, FlattenNumbers)
{
    JsonValue v;
    ASSERT_TRUE(jsonParse(
        R"({"top": 1, "nest": {"x": 2, "deep": {"y": 3}},
            "arr": [10, {"z": 20}], "skip": "text"})",
        v));
    std::map<std::string, double> flat;
    jsonFlattenNumbers(v, "", flat);
    ASSERT_EQ(flat.size(), 5u);
    EXPECT_DOUBLE_EQ(flat["top"], 1.0);
    EXPECT_DOUBLE_EQ(flat["nest.x"], 2.0);
    EXPECT_DOUBLE_EQ(flat["nest.deep.y"], 3.0);
    EXPECT_DOUBLE_EQ(flat["arr.0"], 10.0);
    EXPECT_DOUBLE_EQ(flat["arr.1.z"], 20.0);
    EXPECT_EQ(flat.count("skip"), 0u);
}

} // namespace
} // namespace espnuca
