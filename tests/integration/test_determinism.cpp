/**
 * @file
 * Whole-system determinism: identical (arch, workload, seed) runs are
 * bit-identical; different seeds genuinely perturb.
 */

#include <gtest/gtest.h>

#include "harness/system.hpp"

namespace espnuca {
namespace {

TEST(Determinism, IdenticalRunsBitIdentical)
{
    SystemConfig cfg;
    const RunResult a = simulate(cfg, "esp-nuca", "apache", 5000, 42);
    const RunResult b = simulate(cfg, "esp-nuca", "apache", 5000, 42);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.offChipAccesses, b.offChipAccesses);
    EXPECT_EQ(a.networkFlits, b.networkFlits);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    for (std::size_t i = 0; i < a.levelCounts.size(); ++i)
        EXPECT_EQ(a.levelCounts[i], b.levelCounts[i]);
}

TEST(Determinism, SeedsPerturbResults)
{
    SystemConfig cfg;
    const RunResult a = simulate(cfg, "esp-nuca", "apache", 5000, 1);
    const RunResult b = simulate(cfg, "esp-nuca", "apache", 5000, 2);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(Determinism, HoldsForRandomizedArchitectures)
{
    // CC and ASR use internal RNGs seeded from the run seed.
    SystemConfig cfg;
    for (const char *arch : {"cc-70", "asr"}) {
        const RunResult a = simulate(cfg, arch, "CG", 4000, 9);
        const RunResult b = simulate(cfg, arch, "CG", 4000, 9);
        EXPECT_EQ(a.cycles, b.cycles) << arch;
        EXPECT_EQ(a.offChipAccesses, b.offChipAccesses) << arch;
    }
}

} // namespace
} // namespace espnuca
