/**
 * @file
 * End-to-end system runs: every architecture executes a small workload
 * to completion and yields sane metrics.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace espnuca {
namespace {

std::vector<std::string>
allArchitectures()
{
    return {"shared",        "private",     "sp-nuca",
            "sp-nuca-static", "sp-nuca-shadow", "esp-nuca",
            "esp-nuca-flat", "d-nuca",      "asr",
            "cc-0",          "cc-30",       "cc-70",
            "cc-100"};
}

class EveryArch : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryArch, RunsTransactionalWorkload)
{
    SystemConfig cfg;
    const RunResult r =
        simulate(cfg, GetParam(), "apache", /*ops=*/4000, /*seed=*/1);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_GT(r.avgIpc, 0.0);
    EXPECT_LE(r.avgIpc, 4.0);
    EXPECT_GT(r.avgAccessTime, 0.0);
    // Every reference was attributed exactly once.
    std::uint64_t refs = 0;
    for (auto c : r.levelCounts)
        refs += c;
    EXPECT_GE(refs, r.memOps); // merged waiters can only add
}

TEST_P(EveryArch, RunsPrivateFootprintWorkload)
{
    SystemConfig cfg;
    const RunResult r =
        simulate(cfg, GetParam(), "gzip-4", 4000, 1);
    EXPECT_GT(r.throughput, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllArchs, EveryArch,
                         ::testing::ValuesIn(allArchitectures()));

TEST(EndToEnd, L1CapturesMostReferences)
{
    SystemConfig cfg;
    const RunResult r = simulate(cfg, "shared", "gzip-4", 8000, 1);
    const auto l1 =
        r.levelCounts[static_cast<std::size_t>(ServiceLevel::LocalL1)];
    std::uint64_t total = 0;
    for (auto c : r.levelCounts)
        total += c;
    // The synthetic streams are deliberately L2-stressing, but the L1
    // still has to filter the plurality of references.
    EXPECT_GT(l1 * 10, total * 4); // > 40 % L1 hits
}

TEST(EndToEnd, SharedPoolsCapacityForBigFootprints)
{
    // art's working set overflows a private tile but fits pooled:
    // shared must see fewer off-chip accesses than private. Warm the
    // caches first so compulsory misses don't drown the comparison.
    SystemConfig cfg;
    const RunResult shared =
        simulate(cfg, "shared", "art-4", 40'000, 1, 0.5);
    const RunResult priv =
        simulate(cfg, "private", "art-4", 40'000, 1, 0.5);
    EXPECT_LT(shared.offChipAccesses, priv.offChipAccesses);
}

TEST(EndToEnd, PrivateHasLowerOnChipLatencyForPrivateData)
{
    SystemConfig cfg;
    const RunResult shared = simulate(cfg, "shared", "gzip-4", 8000, 1);
    const RunResult priv = simulate(cfg, "private", "gzip-4", 8000, 1);
    EXPECT_LT(priv.onChipLatency, shared.onChipLatency * 1.05);
}

TEST(EndToEnd, EspNucaCreatesHelpingBlocks)
{
    SystemConfig cfg;
    const Workload wl = makeWorkload("apache", cfg, 8000, 1);
    System sys(cfg, "esp-nuca", wl, 1);
    sys.run();
    auto &esp = dynamic_cast<EspNuca &>(sys.org());
    EXPECT_GT(esp.replicasCreated() + esp.victimsCreated(), 0u);
}

TEST(EndToEnd, IdleCoresStayIdle)
{
    SystemConfig cfg;
    const RunResult r = simulate(cfg, "shared", "gzip-4", 4000, 1);
    // Only 5 cores are active (4 app + services).
    EXPECT_GT(r.memOps, 0u);
    EXPECT_LT(r.memOps, 6u * 4000u);
}

} // namespace
} // namespace espnuca
