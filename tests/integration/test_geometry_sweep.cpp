/**
 * @file
 * Geometry robustness: the whole stack (mapping, protocol, monitor,
 * architectures) must work for CMP configurations other than Table 2 —
 * different core counts, bank counts, capacities and associativities.
 */

#include <gtest/gtest.h>

#include "harness/system.hpp"

namespace espnuca {
namespace {

struct Geometry
{
    std::uint32_t cores;
    std::uint32_t banks;
    std::uint64_t l2MiB;
    std::uint32_t ways;
};

class GeometrySweep : public ::testing::TestWithParam<Geometry>
{
  protected:
    SystemConfig
    config() const
    {
        SystemConfig cfg;
        const Geometry g = GetParam();
        cfg.numCores = g.cores;
        cfg.l2Banks = g.banks;
        cfg.l2SizeBytes = g.l2MiB << 20;
        cfg.l2Ways = g.ways;
        return cfg;
    }
};

TEST_P(GeometrySweep, ConfigIsConsistent)
{
    const SystemConfig cfg = config();
    ASSERT_TRUE(cfg.valid());
    EXPECT_EQ(cfg.banksPerCore() * cfg.numCores, cfg.l2Banks);
    EXPECT_EQ(static_cast<std::uint64_t>(cfg.l2SetsPerBank()) *
                  cfg.l2Ways * cfg.blockBytes * cfg.l2Banks,
              cfg.l2SizeBytes);
}

TEST_P(GeometrySweep, MappingStaysInBounds)
{
    const SystemConfig cfg = config();
    const AddressMap map(cfg);
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.next() << 6;
        EXPECT_LT(map.sharedBank(a), cfg.l2Banks);
        EXPECT_LT(map.sharedSet(a), cfg.l2SetsPerBank());
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            EXPECT_LT(map.privateBank(c, a), cfg.l2Banks);
            EXPECT_TRUE(map.isLocalBank(c, map.privateBank(c, a)));
            EXPECT_LT(map.privateSet(a), cfg.l2SetsPerBank());
        }
    }
}

TEST_P(GeometrySweep, EspNucaRunsEndToEnd)
{
    const SystemConfig cfg = config();
    const Workload wl = makeWorkload("apache", cfg, 2'000, 1);
    System sys(cfg, "esp-nuca", wl, 1);
    const RunResult r = sys.run();
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_EQ(sys.protocol().inFlight(), 0u);
}

TEST_P(GeometrySweep, SharedAndPrivateRunEndToEnd)
{
    const SystemConfig cfg = config();
    for (const char *arch : {"shared", "private", "d-nuca"}) {
        const Workload wl = makeWorkload("CG", cfg, 1'500, 2);
        System sys(cfg, arch, wl, 2);
        const RunResult r = sys.run();
        EXPECT_GT(r.throughput, 0.0) << arch;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(Geometry{8, 32, 8, 16},  // Table 2
                      Geometry{8, 32, 4, 8},   // half capacity
                      Geometry{8, 16, 8, 16},  // 2 banks per core
                      Geometry{4, 16, 4, 16},  // 4-core CMP
                      Geometry{4, 32, 8, 8},   // 8 banks per core
                      Geometry{16, 32, 8, 16}, // 16-core CMP
                      Geometry{8, 64, 16, 16}) // big L2
);

TEST(GeometryEdge, SixteenCoreTopologyIsTaller)
{
    SystemConfig cfg;
    cfg.numCores = 16;
    cfg.l2Banks = 64;
    cfg.l2SizeBytes = 16ull << 20;
    ASSERT_TRUE(cfg.valid());
    Topology topo(cfg);
    EXPECT_EQ(topo.cols(), 8u);
    EXPECT_EQ(topo.numNodes(), 24u);
    for (CoreId c = 0; c < 16; ++c)
        EXPECT_LT(topo.coreNode(c), topo.numNodes());
    for (BankId b = 0; b < 64; ++b)
        EXPECT_EQ(topo.bankNode(b), topo.coreNode(topo.bankOwner(b)));
}

} // namespace
} // namespace espnuca
