/**
 * @file
 * Property-style invariant checks under random stress: after any run,
 * the directory, the L1 arrays and the L2 banks must agree exactly
 * (token conservation is structural; holder-set consistency is the
 * meat of coherence correctness).
 */

#include <gtest/gtest.h>

#include "harness/system.hpp"

namespace espnuca {
namespace {

/** Cross-check directory state against the actual cache arrays. */
void
checkConsistency(System &sys, const SystemConfig &cfg)
{
    Protocol &proto = sys.protocol();
    L2Org &org = sys.org();
    const auto &raw = proto.dir().raw();

    for (const auto &[addr, info] : raw) {
        SCOPED_TRACE(testing::Message() << "addr=0x" << std::hex << addr);
        // Internal entry consistency.
        EXPECT_TRUE(proto.dir().consistent(addr));
        // Every L1 holder bit has a matching cache line.
        for (L1Id id = 0; id < cfg.l1Count(); ++id) {
            EXPECT_EQ(info.hasL1Holder(id), proto.l1(id).has(addr))
                << "l1=" << id;
        }
        // Every L2 copy bit has a matching bank line, exactly one per
        // bank.
        for (BankId b = 0; b < cfg.l2Banks; ++b) {
            const auto [set, way] = org.findCopy(b, addr);
            EXPECT_EQ(info.hasL2Copy(b), way != kNoWay) << "bank=" << b;
        }
        // Token conservation under the redistribution rule.
        std::uint64_t total = 0;
        for (L1Id id = 0; id < cfg.l1Count(); ++id)
            total += proto.dir().tokensOf(addr, OwnerKind::L1, id);
        for (BankId b = 0; b < cfg.l2Banks; ++b)
            total += proto.dir().tokensOf(addr, OwnerKind::L2Bank, b);
        total += proto.dir().tokensOf(addr, OwnerKind::Memory, 0);
        EXPECT_EQ(total, cfg.totalTokens());
    }

    // The reverse direction: no bank line without a directory bit.
    for (BankId b = 0; b < cfg.l2Banks; ++b) {
        CacheBank &bank = org.bank(b);
        for (std::uint32_t s = 0; s < bank.numSets(); ++s) {
            for (std::uint32_t w = 0; w < cfg.l2Ways; ++w) {
                const BlockMeta &m = bank.set(s).way(static_cast<int>(w));
                if (!m.valid)
                    continue;
                const BlockInfo *e = proto.dir().find(m.addr);
                ASSERT_NE(e, nullptr)
                    << "bank " << b << " holds untracked block";
                EXPECT_TRUE(e->hasL2Copy(b));
            }
        }
    }
}

class InvariantSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(InvariantSweep, StateConsistentAfterRun)
{
    const auto &[arch, workload] = GetParam();
    SystemConfig cfg;
    const Workload wl = makeWorkload(workload, cfg, 3000, 7);
    System sys(cfg, arch, wl, 7);
    sys.run();
    checkConsistency(sys, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    ArchByWorkload, InvariantSweep,
    ::testing::Combine(
        ::testing::Values("shared", "private", "sp-nuca", "esp-nuca",
                          "esp-nuca-flat", "d-nuca", "asr", "cc-70"),
        ::testing::Values("apache", "CG", "mcf-gzip")));

TEST(Invariants, WriterIsAlwaysSoleHolder)
{
    // Hammer one block with writes from all cores; after the dust
    // settles exactly one L1 holds it with the owner token.
    SystemConfig cfg;
    Topology topo(cfg);
    EventQueue eq;
    Mesh mesh(topo, eq);
    EspNuca org(cfg);
    Protocol proto(cfg, topo, mesh, eq, org);
    Rng rng(13);
    for (int i = 0; i < 400; ++i) {
        const CoreId c = static_cast<CoreId>(rng.below(8));
        const Addr a = 0x4000 + rng.below(16) * 0x40;
        const AccessType t =
            rng.chance(0.5) ? AccessType::Store : AccessType::Load;
        proto.access(c, t, a, [](ServiceLevel, Cycle) {});
        if (i % 7 == 0)
            eq.run();
    }
    eq.run();
    EXPECT_EQ(proto.inFlight(), 0u);
    for (const auto &[addr, info] : proto.dir().raw()) {
        EXPECT_TRUE(proto.dir().consistent(addr));
        if (info.ownerKind == OwnerKind::L1) {
            const L1Id id = static_cast<L1Id>(info.ownerIndex);
            const int way = proto.l1(id).lookup(addr);
            ASSERT_NE(way, kNoWay);
            if (proto.l1(id).meta(addr, way).dirty) {
                // Dirty data implies the writer gathered every token at
                // write time; readers may have joined since, but no L2
                // copy may predate the write.
                EXPECT_TRUE(proto.l1(id).meta(addr, way).hasOwnerToken);
            }
        }
    }
}

TEST(Invariants, HelpingBlocksBoundedByProtectedLru)
{
    SystemConfig cfg;
    const Workload wl = makeWorkload("apache", cfg, 6000, 3);
    System sys(cfg, "esp-nuca", wl, 3);
    sys.run();
    auto &esp = dynamic_cast<EspNuca &>(sys.org());
    for (BankId b = 0; b < esp.numBanks(); ++b) {
        CacheBank &bank = esp.bank(b);
        const std::uint32_t nmax = bank.monitor()->nmax();
        for (std::uint32_t s = 0; s < bank.numSets(); ++s) {
            const std::uint32_t limit =
                ProtectedLru::limitFor(bank.context(s));
            // Transient overshoot by nmax drops is trimmed lazily; the
            // bound we guarantee is the explorer cap + slack from
            // recent decrements.
            EXPECT_LE(bank.set(s).helpingCount(),
                      std::max(limit, cfg.l2Ways - 2u))
                << "bank " << b << " set " << s << " nmax " << nmax;
        }
    }
}

TEST(Invariants, ReferenceSetsNeverHoldHelpingBlocks)
{
    SystemConfig cfg;
    const Workload wl = makeWorkload("oltp", cfg, 6000, 5);
    System sys(cfg, "esp-nuca", wl, 5);
    sys.run();
    auto &esp = dynamic_cast<EspNuca &>(sys.org());
    for (BankId b = 0; b < esp.numBanks(); ++b) {
        CacheBank &bank = esp.bank(b);
        for (std::uint32_t s = 0; s < bank.numSets(); ++s) {
            if (bank.monitor()->category(s) != SetCategory::Reference)
                continue;
            EXPECT_EQ(bank.set(s).helpingCount(), 0u)
                << "bank " << b << " set " << s;
        }
    }
}

} // namespace
} // namespace espnuca
