/**
 * @file
 * The parallel experiment runner must be a pure wall-clock
 * optimization: every statistic of a DataPoint — means, confidence
 * intervals, extrema, per-level decompositions — must be bit-identical
 * to the serial runner's, at any job count, because the per-seed runs
 * are independent and are folded in seed order.
 */

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "harness/experiment.hpp"

namespace espnuca {
namespace {

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.opsPerCore = 3'000;
    cfg.runs = 3;
    cfg.baseSeed = 42;
    return cfg;
}

void
expectStatsIdentical(const RunningStats &a, const RunningStats &b)
{
    EXPECT_EQ(a.count(), b.count());
    // Exact equality on purpose: the fold order is the contract.
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.ci95(), b.ci95());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

void
expectPointsIdentical(const DataPoint &a, const DataPoint &b)
{
    EXPECT_EQ(a.arch, b.arch);
    EXPECT_EQ(a.workload, b.workload);
    expectStatsIdentical(a.throughput, b.throughput);
    expectStatsIdentical(a.avgIpc, b.avgIpc);
    expectStatsIdentical(a.avgAccessTime, b.avgAccessTime);
    expectStatsIdentical(a.onChipLatency, b.onChipLatency);
    expectStatsIdentical(a.offChip, b.offChip);
    for (std::size_t i = 0; i < a.levelContribution.size(); ++i)
        expectStatsIdentical(a.levelContribution[i],
                             b.levelContribution[i]);
    EXPECT_EQ(a.lastRun.cycles, b.lastRun.cycles);
    EXPECT_EQ(a.lastRun.offChipAccesses, b.lastRun.offChipAccesses);
}

TEST(ParallelDeterminism, EspNucaMatchesSerial)
{
    const ExperimentConfig cfg = smallConfig();
    const DataPoint serial = runPoint(cfg, "esp-nuca", "apache");
    ThreadPool pool(4);
    const DataPoint parallel =
        runPointParallel(cfg, "esp-nuca", "apache", &pool);
    expectPointsIdentical(serial, parallel);
}

TEST(ParallelDeterminism, SpNucaMatchesSerial)
{
    const ExperimentConfig cfg = smallConfig();
    const DataPoint serial = runPoint(cfg, "sp-nuca", "gzip-4");
    ThreadPool pool(4);
    const DataPoint parallel =
        runPointParallel(cfg, "sp-nuca", "gzip-4", &pool);
    expectPointsIdentical(serial, parallel);
}

TEST(ParallelDeterminism, SingleJobFallbackMatchesSerial)
{
    ExperimentConfig cfg = smallConfig();
    cfg.jobs = 1; // forces the inline serial path, no pool at all
    const DataPoint serial = runPoint(cfg, "esp-nuca", "apache");
    const DataPoint fallback =
        runPointParallel(cfg, "esp-nuca", "apache");
    expectPointsIdentical(serial, fallback);
}

TEST(ParallelDeterminism, MatrixMatchesPerPointSerial)
{
    ExperimentConfig cfg = smallConfig();
    cfg.runs = 2;

    ExperimentMatrix m(cfg);
    const std::vector<std::pair<std::string, std::string>> pts = {
        {"esp-nuca", "apache"},
        {"sp-nuca", "apache"},
        {"shared", "gzip-4"},
    };
    for (const auto &[a, w] : pts)
        m.add(a, w);
    ThreadPool pool(4);
    m.run(&pool);

    ASSERT_EQ(m.points().size(), pts.size());
    for (const auto &[a, w] : pts)
        expectPointsIdentical(runPoint(cfg, a, w), m.at(a, w));
}

TEST(ParallelDeterminism, MatrixDeduplicatesPoints)
{
    ExperimentConfig cfg = smallConfig();
    cfg.runs = 1;
    cfg.jobs = 1;
    ExperimentMatrix m(cfg);
    m.add("shared", "apache");
    m.add("shared", "apache");
    m.run();
    EXPECT_EQ(m.points().size(), 1u);
}

} // namespace
} // namespace espnuca
