/**
 * @file
 * Leveled-logger tests: ESPNUCA_LOG spec parsing and per-component
 * threshold resolution.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"

namespace espnuca {
namespace {

using logdetail::LogFilter;

TEST(LogFilter, DefaultsToInfoEverywhere)
{
    const LogFilter f = LogFilter::fromSpec(nullptr);
    EXPECT_EQ(f.thresholdFor("mesh"), LogLevel::Info);
    EXPECT_EQ(f.thresholdFor("obs"), LogLevel::Info);
}

TEST(LogFilter, BareLevelSetsTheGlobalThreshold)
{
    const LogFilter f = LogFilter::fromSpec("debug");
    EXPECT_EQ(f.thresholdFor("mesh"), LogLevel::Debug);
    EXPECT_EQ(f.thresholdFor("anything"), LogLevel::Debug);
}

TEST(LogFilter, PerComponentOverridesBeatTheGlobal)
{
    const LogFilter f = LogFilter::fromSpec("warn,obs:trace,mesh:error");
    EXPECT_EQ(f.thresholdFor("obs"), LogLevel::Trace);
    EXPECT_EQ(f.thresholdFor("mesh"), LogLevel::Error);
    EXPECT_EQ(f.thresholdFor("proto"), LogLevel::Warn);
}

TEST(LogFilter, UnknownTokensAreIgnored)
{
    // A bad filter must never kill (or alter) a simulation.
    const LogFilter f =
        LogFilter::fromSpec("bogus,obs:nope,:warn,,mesh:debug");
    EXPECT_EQ(f.thresholdFor("mesh"), LogLevel::Debug);
    EXPECT_EQ(f.thresholdFor("obs"), LogLevel::Info);
    EXPECT_EQ(f.thresholdFor("other"), LogLevel::Info);
}

TEST(LogFilter, SeverityOrderingIsMostSevereFirst)
{
    EXPECT_LT(static_cast<int>(LogLevel::Error),
              static_cast<int>(LogLevel::Warn));
    EXPECT_LT(static_cast<int>(LogLevel::Warn),
              static_cast<int>(LogLevel::Info));
    EXPECT_LT(static_cast<int>(LogLevel::Info),
              static_cast<int>(LogLevel::Debug));
    EXPECT_LT(static_cast<int>(LogLevel::Debug),
              static_cast<int>(LogLevel::Trace));
}

} // namespace
} // namespace espnuca
