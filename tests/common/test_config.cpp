/**
 * @file
 * The Table 2 default configuration and its derived geometry.
 */

#include <gtest/gtest.h>

#include "common/config.hpp"

namespace espnuca {
namespace {

TEST(Config, Table2Defaults)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.numCores, 8u);
    EXPECT_EQ(cfg.windowSize, 64u);
    EXPECT_EQ(cfg.issueWidth, 4u);
    EXPECT_EQ(cfg.maxOutstanding, 16u);
    EXPECT_EQ(cfg.l1SizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l1Ways, 4u);
    EXPECT_EQ(cfg.l2SizeBytes, 8ull << 20);
    EXPECT_EQ(cfg.l2Banks, 32u);
    EXPECT_EQ(cfg.l2Ways, 16u);
    EXPECT_EQ(cfg.l2Latency, 5u);
    EXPECT_EQ(cfg.l2TagLatency, 2u);
    EXPECT_EQ(cfg.routerLatency + cfg.linkLatency, 5u); // 5-cycle hop
    EXPECT_TRUE(cfg.valid());
}

TEST(Config, DerivedGeometry)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.blockOffsetBits(), 6u); // B = 6
    EXPECT_EQ(cfg.bankBits(), 5u);        // n = 5
    EXPECT_EQ(cfg.coreBits(), 3u);        // p = 3
    EXPECT_EQ(cfg.banksPerCore(), 4u);    // 2^(n-p)
    EXPECT_EQ(cfg.bankBytes(), 256u * 1024);
    EXPECT_EQ(cfg.l2SetsPerBank(), 256u);
    EXPECT_EQ(cfg.l2IndexBits(), 8u); // i = 8
    EXPECT_EQ(cfg.l1Sets(), 128u);
}

TEST(Config, PaperMonitorParameters)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.emaBits, 8u);          // b = 8
    EXPECT_EQ(cfg.emaShift, 1u);         // a = 1 (alpha = 0.5, N = 3)
    EXPECT_EQ(cfg.degradationShift, 3u); // d = 3
    EXPECT_EQ(cfg.conventionalSamples, 2u);
    EXPECT_EQ(cfg.referenceSamples, 1u);
    EXPECT_EQ(cfg.explorerSamples, 1u);
}

TEST(Config, InvalidWhenNotPow2)
{
    SystemConfig cfg;
    cfg.l2Banks = 33;
    EXPECT_FALSE(cfg.valid());
}

TEST(Config, SmallerConfigStillValid)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Banks = 16;
    cfg.l2SizeBytes = 4ull << 20;
    EXPECT_TRUE(cfg.valid());
    EXPECT_EQ(cfg.banksPerCore(), 4u);
}

} // namespace
} // namespace espnuca
