/**
 * @file
 * Unit tests for the bit-field helpers behind the Figure 1b address
 * interpretations.
 */

#include <gtest/gtest.h>

#include "common/bitops.hpp"

namespace espnuca {
namespace {

TEST(Bitops, BitsExtractsRanges)
{
    const std::uint64_t v = 0xABCD'1234'5678'9F0FULL;
    EXPECT_EQ(bits(v, 0, 4), 0xFu);
    EXPECT_EQ(bits(v, 4, 4), 0x0u);
    EXPECT_EQ(bits(v, 8, 8), 0x9Fu);
    EXPECT_EQ(bits(v, 0, 64), v);
    EXPECT_EQ(bits(v, 32, 16), 0x1234u);
}

TEST(Bitops, BitsZeroWidthIsZero)
{
    EXPECT_EQ(bits(~0ULL, 10, 0), 0u);
}

TEST(Bitops, BitsHighLowBoundaries)
{
    EXPECT_EQ(bits(1ULL << 63, 63, 1), 1u);
    EXPECT_EQ(bits(1ULL << 63, 62, 1), 0u);
}

TEST(Bitops, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(8), 0xFFu);
    EXPECT_EQ(maskBits(64), ~0ULL);
}

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ULL << 40));
    EXPECT_FALSE(isPow2((1ULL << 40) + 1));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ULL << 63), 63u);
}

TEST(Bitops, ExactLog2MatchesShifts)
{
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(exactLog2(1ULL << i), i);
}

TEST(Bitops, RoundUp)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
}

TEST(Bitops, DivCeil)
{
    EXPECT_EQ(divCeil(0, 16), 0u);
    EXPECT_EQ(divCeil(1, 16), 1u);
    EXPECT_EQ(divCeil(16, 16), 1u);
    EXPECT_EQ(divCeil(17, 16), 2u);
    EXPECT_EQ(divCeil(72, 16), 5u); // the 72 B data message = 5 flits
}

} // namespace
} // namespace espnuca
