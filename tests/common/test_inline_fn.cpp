/**
 * @file
 * InlineFn tests: inline vs heap storage decision, move semantics,
 * capture destruction, move-only captures, return values.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

#include "common/inline_fn.hpp"

namespace espnuca {
namespace {

using SmallFn = InlineFn<int(), 64>;

TEST(InlineFn, EmptyAndNull)
{
    SmallFn f;
    EXPECT_FALSE(f);
    SmallFn g(nullptr);
    EXPECT_FALSE(g);
}

TEST(InlineFn, CallsSmallLambdaInline)
{
    int x = 5;
    SmallFn f([&x]() { return x * 2; });
    static_assert(SmallFn::fitsInline<int *>());
    EXPECT_TRUE(f);
    EXPECT_EQ(f(), 10);
    x = 7;
    EXPECT_EQ(f(), 14);
}

TEST(InlineFn, OversizedCaptureFallsBackToHeap)
{
    std::array<std::uint64_t, 32> big{};
    big[0] = 1;
    big[31] = 41;
    auto lam = [big]() { return static_cast<int>(big[0] + big[31]); };
    static_assert(!SmallFn::fitsInline<decltype(lam)>());
    SmallFn f(std::move(lam));
    EXPECT_EQ(f(), 42);

    // Heap-backed targets survive moves (ownership transfer).
    SmallFn g(std::move(f));
    EXPECT_FALSE(f);
    EXPECT_EQ(g(), 42);
}

TEST(InlineFn, MoveTransfersTarget)
{
    int calls = 0;
    InlineFn<void(), 64> f([&calls]() { ++calls; });
    InlineFn<void(), 64> g(std::move(f));
    EXPECT_FALSE(f);
    ASSERT_TRUE(g);
    g();
    EXPECT_EQ(calls, 1);

    InlineFn<void(), 64> h;
    h = std::move(g);
    EXPECT_FALSE(g);
    h();
    EXPECT_EQ(calls, 2);
}

TEST(InlineFn, DestroysCaptureExactlyOnce)
{
    auto counter = std::make_shared<int>(0);
    {
        InlineFn<void(), 64> f([counter]() { ++*counter; });
        EXPECT_EQ(counter.use_count(), 2);
        InlineFn<void(), 64> g(std::move(f));
        // The moved-from shell must have released its copy.
        EXPECT_EQ(counter.use_count(), 2);
        g();
    }
    EXPECT_EQ(counter.use_count(), 1);
    EXPECT_EQ(*counter, 1);
}

TEST(InlineFn, ResetReleasesCapture)
{
    auto counter = std::make_shared<int>(0);
    InlineFn<void(), 64> f([counter]() {});
    EXPECT_EQ(counter.use_count(), 2);
    f.reset();
    EXPECT_FALSE(f);
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFn, MoveOnlyCapture)
{
    auto p = std::make_unique<int>(99);
    InlineFn<int(), 64> f([p = std::move(p)]() { return *p; });
    EXPECT_EQ(f(), 99);
    InlineFn<int(), 64> g(std::move(f));
    EXPECT_EQ(g(), 99);
}

TEST(InlineFn, PassesArgumentsAndReturns)
{
    InlineFn<int(int, int), 32> add([](int a, int b) { return a + b; });
    EXPECT_EQ(add(2, 40), 42);

    // Move-only argument types are forwarded, not copied.
    InlineFn<int(std::unique_ptr<int>), 32> deref(
        [](std::unique_ptr<int> q) { return *q; });
    EXPECT_EQ(deref(std::make_unique<int>(7)), 7);
}

TEST(InlineFn, SelfMoveAssignIsSafe)
{
    int calls = 0;
    InlineFn<void(), 64> f([&calls]() { ++calls; });
    InlineFn<void(), 64> &ref = f;
    f = std::move(ref);
    ASSERT_TRUE(f);
    f();
    EXPECT_EQ(calls, 1);
}

} // namespace
} // namespace espnuca
