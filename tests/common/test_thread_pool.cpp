/**
 * @file
 * ThreadPool unit tests: result ordering through futures, exception
 * propagation, single-worker operation, and the ESPNUCA_JOBS
 * environment knob behind defaultJobs().
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace espnuca {
namespace {

TEST(ThreadPool, ResultsArriveInSubmissionSlots)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 100; ++i)
        futs.push_back(pool.submit([i]() { return i * i; }));
    // Harvest in submission order: values map to their slot regardless
    // of the order the workers finished in.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([]() { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([]() { return 3; }).get(), 3);
}

TEST(ThreadPool, SurvivesAStormOfThrowingJobs)
{
    // Regression: a worker must never die to an escaping exception, so
    // after every worker has seen many throwing jobs the pool still
    // runs at full capacity.
    ThreadPool pool(4);
    std::vector<std::future<int>> bad;
    bad.reserve(64);
    for (int i = 0; i < 64; ++i)
        bad.push_back(pool.submit(
            []() -> int { throw std::runtime_error("storm"); }));
    for (auto &f : bad)
        EXPECT_THROW(f.get(), std::runtime_error);
    std::vector<std::future<int>> good;
    good.reserve(64);
    for (int i = 0; i < 64; ++i)
        good.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(good[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SingleWorkerRunsEverything)
{
    ThreadPool pool(1);
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futs;
    for (int i = 1; i <= 50; ++i)
        futs.push_back(pool.submit([&sum, i]() { sum += i; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(sum.load(), 50 * 51 / 2);
}

TEST(ThreadPool, ZeroWorkersClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([]() { return 42; }).get(), 42);
}

TEST(ThreadPool, DefaultJobsHonorsEnvironment)
{
    ::setenv("ESPNUCA_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
    ::setenv("ESPNUCA_JOBS", "1", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 1u);
    ::setenv("ESPNUCA_JOBS", "0", 1); // nonsense clamps to 1
    EXPECT_EQ(ThreadPool::defaultJobs(), 1u);
    ::unsetenv("ESPNUCA_JOBS");
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 20; ++i)
            pool.submit([&done]() { ++done; });
        // No explicit get(): destruction must still run everything.
    }
    EXPECT_EQ(done.load(), 20);
}

} // namespace
} // namespace espnuca
