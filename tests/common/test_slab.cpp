/**
 * @file
 * Slab allocator tests: construction/destruction discipline, slot
 * recycling, pointer stability across growth.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/slab.hpp"

namespace espnuca {
namespace {

struct Probe
{
    static int live;
    int value;
    explicit Probe(int v = 0) : value(v) { ++live; }
    ~Probe() { --live; }
};
int Probe::live = 0;

TEST(Slab, AcquireConstructsReleaseDestroys)
{
    Slab<Probe> slab;
    Probe::live = 0;
    Probe *p = slab.acquire(7);
    EXPECT_EQ(Probe::live, 1);
    EXPECT_EQ(p->value, 7);
    EXPECT_EQ(slab.live(), 1u);
    slab.release(p);
    EXPECT_EQ(Probe::live, 0);
    EXPECT_EQ(slab.live(), 0u);
}

TEST(Slab, RecyclesReleasedSlots)
{
    Slab<Probe, 8> slab;
    Probe *a = slab.acquire(1);
    slab.release(a);
    Probe *b = slab.acquire(2);
    // Steady-state churn reuses the hot slot instead of growing.
    EXPECT_EQ(a, b);
    EXPECT_EQ(b->value, 2);
    slab.release(b);
    EXPECT_EQ(slab.slots(), 8u);
}

TEST(Slab, PointersStableAcrossGrowth)
{
    Slab<Probe, 4> slab;
    std::vector<Probe *> held;
    for (int i = 0; i < 100; ++i)
        held.push_back(slab.acquire(i));
    // Growth allocated new chunks; earlier objects must not have moved.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(held[i]->value, i);
    std::set<Probe *> unique(held.begin(), held.end());
    EXPECT_EQ(unique.size(), held.size());
    for (Probe *p : held)
        slab.release(p);
    EXPECT_EQ(slab.live(), 0u);
}

TEST(Slab, HighWaterMarkBoundsFootprint)
{
    Slab<Probe, 16> slab;
    // 10k acquire/release cycles with at most 3 in flight: the slab
    // must never grow past one chunk.
    Probe *ring[3] = {nullptr, nullptr, nullptr};
    for (int i = 0; i < 10000; ++i) {
        Probe *&slot = ring[i % 3];
        if (slot != nullptr)
            slab.release(slot);
        slot = slab.acquire(i);
    }
    EXPECT_EQ(slab.slots(), 16u);
    for (Probe *&p : ring)
        slab.release(p);
}

} // namespace
} // namespace espnuca
