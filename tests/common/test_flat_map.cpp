/**
 * @file
 * FlatMap tests: randomized differential against std::unordered_map
 * (the container it replaced on the coherence hot path), plus targeted
 * erase-churn and rehash-under-load cases.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"

namespace espnuca {
namespace {

TEST(FlatMap, StartsEmpty)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_EQ(m.size(), 0u);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(42), m.end());
    EXPECT_FALSE(m.erase(42));
    EXPECT_EQ(m.begin(), m.end());
}

TEST(FlatMap, InsertFindEraseBasics)
{
    FlatMap<std::uint64_t, int> m;
    m[7] = 70;
    m[9] = 90;
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(7), m.end());
    EXPECT_EQ(m.find(7)->second, 70);
    EXPECT_EQ(m.find(8), m.end());

    m[7] = 71; // overwrite, not duplicate
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(m.find(7)->second, 71);

    EXPECT_TRUE(m.erase(7));
    EXPECT_EQ(m.find(7), m.end());
    EXPECT_EQ(m.size(), 1u);
    EXPECT_FALSE(m.erase(7));
}

TEST(FlatMap, EraseByIterator)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 10; ++k)
        m[k] = static_cast<int>(k);
    auto it = m.find(4);
    ASSERT_NE(it, m.end());
    m.erase(it);
    EXPECT_EQ(m.find(4), m.end());
    EXPECT_EQ(m.size(), 9u);
}

TEST(FlatMap, MoveOnlyValues)
{
    struct MoveOnly
    {
        std::vector<int> v;
        MoveOnly() = default;
        MoveOnly(MoveOnly &&) = default;
        MoveOnly &operator=(MoveOnly &&) = default;
        MoveOnly(const MoveOnly &) = delete;
        MoveOnly &operator=(const MoveOnly &) = delete;
    };
    FlatMap<std::uint64_t, MoveOnly> m;
    // Enough inserts to force several rehashes of move-only payloads.
    for (std::uint64_t k = 0; k < 200; ++k)
        m[k].v.assign(3, static_cast<int>(k));
    EXPECT_EQ(m.size(), 200u);
    for (std::uint64_t k = 0; k < 200; ++k)
        EXPECT_EQ(m.find(k)->second.v[0], static_cast<int>(k));
}

// Block-aligned addresses all hash to multiples of 64 under the
// identity std::hash; the mixing layer must still spread them.
TEST(FlatMap, BlockAlignedKeysDoNotCluster)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 4096; ++k)
        m[k * 64] = static_cast<int>(k);
    EXPECT_EQ(m.size(), 4096u);
    for (std::uint64_t k = 0; k < 4096; ++k)
        EXPECT_EQ(m.find(k * 64)->second, static_cast<int>(k));
    // Load factor stays in the designed band (table grew as needed).
    EXPECT_LE(m.size() * 4, m.capacity() * 3);
}

TEST(FlatMap, EraseChurnKeepsTableBounded)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 64; ++k)
        m[k] = 1;
    const std::size_t cap = m.capacity();
    // Churn far more erase/insert cycles than the capacity: erased
    // slots must be genuinely freed (backward-shift deletion leaves
    // no dead slots) instead of growing the table.
    for (int round = 0; round < 10000; ++round) {
        const std::uint64_t k = 1000 + (round % 8);
        m[k] = round;
        m.erase(k);
    }
    EXPECT_EQ(m.size(), 64u);
    EXPECT_LE(m.capacity(), cap * 2);
    for (std::uint64_t k = 0; k < 64; ++k)
        EXPECT_NE(m.find(k), m.end());
}

TEST(FlatMap, IterationVisitsEachLiveEntryOnce)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m[k] = static_cast<int>(k);
    for (std::uint64_t k = 0; k < 100; k += 2)
        m.erase(k);

    std::vector<std::uint64_t> seen;
    for (const auto &[k, v] : m) {
        EXPECT_EQ(v, static_cast<int>(k));
        seen.push_back(k);
    }
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), 50u);
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 2 * i + 1);
}

TEST(FlatMap, ReserveAvoidsRehash)
{
    FlatMap<std::uint64_t, int> m;
    m.reserve(1000);
    const std::size_t cap = m.capacity();
    for (std::uint64_t k = 0; k < 1000; ++k)
        m[k] = 1;
    EXPECT_EQ(m.capacity(), cap);
}

/**
 * Differential: a random insert/overwrite/erase/find stream applied to
 * FlatMap and std::unordered_map must agree on every query, on size,
 * and on the full key/value set — through tombstone churn and rehashes.
 */
TEST(FlatMap, RandomizedDifferentialAgainstUnorderedMap)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        FlatMap<std::uint64_t, std::uint64_t> fm;
        std::unordered_map<std::uint64_t, std::uint64_t> um;
        Rng rng(seed);

        for (int op = 0; op < 50000; ++op) {
            // Key space small enough to guarantee collisions, erases of
            // present keys, and reinsertions over tombstones.
            const std::uint64_t k = rng.below(512) * 64;
            switch (rng.below(4)) {
              case 0:
              case 1: { // insert / overwrite
                  const std::uint64_t v = rng.next();
                  fm[k] = v;
                  um[k] = v;
                  break;
              }
              case 2: { // erase
                  EXPECT_EQ(fm.erase(k), um.erase(k) != 0);
                  break;
              }
              default: { // find
                  auto fit = fm.find(k);
                  auto uit = um.find(k);
                  ASSERT_EQ(fit != fm.end(), uit != um.end())
                      << "presence mismatch for key " << k;
                  if (uit != um.end()) {
                      EXPECT_EQ(fit->second, uit->second);
                  }
                  break;
              }
            }
            ASSERT_EQ(fm.size(), um.size());
        }

        // Full-content sweep: iteration count and every entry agree.
        std::size_t visited = 0;
        for (const auto &[k, v] : fm) {
            auto uit = um.find(k);
            ASSERT_NE(uit, um.end()) << "phantom key " << k;
            EXPECT_EQ(v, uit->second);
            ++visited;
        }
        EXPECT_EQ(visited, um.size());
    }
}

} // namespace
} // namespace espnuca
