/**
 * @file
 * Tests for the deterministic RNG: reproducibility, bounds, and rough
 * distribution sanity.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace espnuca {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const auto first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

} // namespace
} // namespace espnuca
