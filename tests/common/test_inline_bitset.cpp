/**
 * @file
 * InlineBitset: the fixed-width holder masks behind the directory.
 * The crucial frozen property is ascending-order iteration — the sweep
 * walks' visit order is part of the byte-compared simulator behavior.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/inline_bitset.hpp"

namespace espnuca {
namespace {

TEST(InlineBitset, StartsEmpty)
{
    InlineBitset<128> b;
    EXPECT_TRUE(b.none());
    EXPECT_FALSE(b.any());
    EXPECT_EQ(b.count(), 0u);
    for (std::uint32_t i = 0; i < 128; ++i)
        EXPECT_FALSE(b.test(i));
}

TEST(InlineBitset, SetTestClearAcrossWords)
{
    InlineBitset<256> b;
    const std::vector<std::uint32_t> bits = {0, 1, 63, 64, 127, 128, 255};
    for (std::uint32_t i : bits)
        b.set(i);
    EXPECT_EQ(b.count(), bits.size());
    for (std::uint32_t i : bits)
        EXPECT_TRUE(b.test(i)) << i;
    EXPECT_FALSE(b.test(62));
    EXPECT_FALSE(b.test(129));
    b.clear(64);
    EXPECT_FALSE(b.test(64));
    EXPECT_EQ(b.count(), bits.size() - 1);
}

TEST(InlineBitset, ForEachSetAscendingAcrossWords)
{
    InlineBitset<192> b;
    const std::vector<std::uint32_t> bits = {5, 63, 64, 100, 130, 191};
    // Insert out of order; iteration must still ascend.
    b.set(130);
    b.set(5);
    b.set(191);
    b.set(64);
    b.set(100);
    b.set(63);
    std::vector<std::uint32_t> seen;
    b.forEachSet([&](std::uint32_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, bits);
}

TEST(InlineBitset, MatchesScalarWalkOrderInWordZero)
{
    // The old masks were scalars walked with `m &= m - 1`; on any
    // single-word pattern the new walk must visit identically.
    const std::uint64_t pattern = 0xdeadbeefcafe1234ULL;
    std::vector<std::uint32_t> oldOrder;
    for (std::uint64_t m = pattern; m != 0; m &= m - 1)
        oldOrder.push_back(
            static_cast<std::uint32_t>(__builtin_ctzll(m)));
    InlineBitset<64> b;
    b.setWord(0, pattern);
    std::vector<std::uint32_t> newOrder;
    b.forEachSet([&](std::uint32_t i) { newOrder.push_back(i); });
    EXPECT_EQ(newOrder, oldOrder);
}

TEST(InlineBitset, WithClearedLeavesOriginalUntouched)
{
    InlineBitset<128> b;
    b.set(3);
    b.set(70);
    const InlineBitset<128> c = b.withCleared(70);
    EXPECT_TRUE(b.test(70));
    EXPECT_FALSE(c.test(70));
    EXPECT_TRUE(c.test(3));
    // Clearing an unset bit is a no-op copy.
    EXPECT_TRUE(b.withCleared(99) == b);
}

TEST(InlineBitset, EqualityAndWordAccess)
{
    InlineBitset<128> a, b;
    EXPECT_TRUE(a == b);
    a.set(127);
    EXPECT_FALSE(a == b);
    b.setWord(1, a.word(1));
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.word(1), std::uint64_t{1} << 63);
    EXPECT_EQ(a.word(0), 0u);
}

} // namespace
} // namespace espnuca
