/**
 * @file
 * Corruption injection against the persistent artifact formats: every
 * way a snapshot or per-point file can rot on disk — bit flips,
 * truncation, trailing garbage, short writes / ENOSPC mid-write —
 * must surface as a typed error naming the file (and, for checksum
 * failures, the expected/actual CRC32C), never as silent acceptance
 * or a plausible-looking partial artifact.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "common/atomic_file.hpp"
#include "common/crc32c.hpp"
#include "common/snapshot.hpp"
#include "harness/sweep.hpp"

namespace espnuca {
namespace {

std::string
tmpPath(const std::string &name)
{
    // Unique per test: ctest runs each TEST as its own process, and a
    // shared fixed path races when the suite runs with -j.
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return (std::filesystem::temp_directory_path() /
            ("espnuca_corrupt_" + std::string(info->name()) + "_" +
             name))
        .string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

TEST(Crc32c, KnownAnswer)
{
    // The standard CRC32C check value.
    EXPECT_EQ(crc32c(std::string("123456789")), 0xE3069283u);
    EXPECT_EQ(crc32c(std::string()), 0x00000000u);
    EXPECT_EQ(crc32cHex(0xE3069283u), "e3069283");
    EXPECT_EQ(crc32cHex(0u), "00000000");
}

TEST(Crc32c, EveryByteMatters)
{
    std::string s = "the quick brown fox";
    const std::uint32_t base = crc32c(s);
    for (std::size_t i = 0; i < s.size(); ++i) {
        std::string flipped = s;
        flipped[i] ^= 0x01;
        EXPECT_NE(crc32c(flipped), base) << "at byte " << i;
    }
}

// ------------------------------------------------------------------
// Snapshot files (CRC32C trailer, kSnapshotVersion 2)
// ------------------------------------------------------------------

class SnapshotCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = tmpPath("snap.ckpt");
        std::filesystem::remove(path_);
        SnapshotWriter w;
        w.u64(0xDEADBEEFULL);
        w.u64(42);
        w.str("payload");
        ASSERT_TRUE(w.writeFile(path_));
        bytes_ = slurp(path_);
        // body + 4-byte trailer
        ASSERT_EQ(bytes_.size(), w.bytes().size() + 4);
    }

    void TearDown() override { std::filesystem::remove(path_); }

    SnapshotError::Kind
    loadKind()
    {
        try {
            SnapshotReader::fromFile(path_);
        } catch (const SnapshotError &e) {
            what_ = e.what();
            return e.kind();
        }
        return SnapshotError::Kind::Other;
    }

    std::string path_;
    std::string bytes_;
    std::string what_;
};

TEST_F(SnapshotCorruption, CleanFileRoundTrips)
{
    SnapshotReader r = SnapshotReader::fromFile(path_);
    EXPECT_EQ(r.u64(), 0xDEADBEEFULL);
    EXPECT_EQ(r.u64(), 42u);
    EXPECT_EQ(r.str(), "payload");
    EXPECT_NO_THROW(r.finish());
}

TEST_F(SnapshotCorruption, BitFlipInBodyIsDetected)
{
    for (const std::size_t at :
         {std::size_t{0}, bytes_.size() / 2, bytes_.size() - 5}) {
        std::string mutated = bytes_;
        mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
        spit(path_, mutated);
        EXPECT_EQ(loadKind(), SnapshotError::Kind::ChecksumMismatch)
            << "flip at " << at;
        EXPECT_NE(what_.find(path_), std::string::npos);
        EXPECT_NE(what_.find("expected"), std::string::npos);
    }
}

TEST_F(SnapshotCorruption, BitFlipInTrailerIsDetected)
{
    std::string mutated = bytes_;
    mutated.back() = static_cast<char>(mutated.back() ^ 0x01);
    spit(path_, mutated);
    EXPECT_EQ(loadKind(), SnapshotError::Kind::ChecksumMismatch);
}

TEST_F(SnapshotCorruption, TruncationIsDetected)
{
    spit(path_, bytes_.substr(0, bytes_.size() - 3));
    EXPECT_EQ(loadKind(), SnapshotError::Kind::ChecksumMismatch);

    // Too short to even hold the trailer.
    spit(path_, bytes_.substr(0, 3));
    EXPECT_EQ(loadKind(), SnapshotError::Kind::Truncated);
}

TEST_F(SnapshotCorruption, TrailingGarbageIsDetected)
{
    spit(path_, bytes_ + "garbage");
    EXPECT_EQ(loadKind(), SnapshotError::Kind::ChecksumMismatch);
}

TEST_F(SnapshotCorruption, MissingFileIsTyped)
{
    std::filesystem::remove(path_);
    EXPECT_EQ(loadKind(), SnapshotError::Kind::OpenFailed);
}

// ------------------------------------------------------------------
// Per-point result files ("crc32c" field, espnuca-point-v2)
// ------------------------------------------------------------------

PointRecord
samplePoint()
{
    PointRecord rec;
    rec.bench = "fig_test";
    rec.hash = 0x0123456789ABCDEFULL;
    rec.index = 3;
    rec.total = 9;
    rec.key = jsonQuote("esp-nuca/apache");
    rec.arch = jsonQuote("esp-nuca");
    rec.workload = jsonQuote("apache");
    rec.build = "{\"version\":\"test\"}";
    rec.config = "{\"jobs\":2}";
    rec.point = "{\"throughput\":1.5}";
    return rec;
}

class PointCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = tmpPath("point.json");
        std::filesystem::remove(path_);
        ASSERT_TRUE(writePointFile(path_, samplePoint()));
        bytes_ = slurp(path_);
    }

    void TearDown() override { std::filesystem::remove(path_); }

    PointFileError::Kind
    loadKind()
    {
        try {
            readPointFile(path_);
        } catch (const PointFileError &e) {
            what_ = e.what();
            return e.kind();
        }
        ADD_FAILURE() << "corruption was accepted";
        return PointFileError::Kind::OpenFailed;
    }

    std::string path_;
    std::string bytes_;
    std::string what_;
};

TEST_F(PointCorruption, CleanFileRoundTrips)
{
    const PointRecord rec = readPointFile(path_);
    const PointRecord want = samplePoint();
    EXPECT_EQ(rec.bench, want.bench);
    EXPECT_EQ(rec.hash, want.hash);
    EXPECT_EQ(rec.index, want.index);
    EXPECT_EQ(rec.total, want.total);
    EXPECT_EQ(rec.point, want.point);
    // Rewriting the same record must produce the same bytes — resume
    // and recompute converge on one canonical serialization.
    ASSERT_TRUE(writePointFile(path_, rec));
    EXPECT_EQ(slurp(path_), bytes_);
}

TEST_F(PointCorruption, BitFlipIsChecksumMismatch)
{
    // Flip a byte inside a value (not the structural suffix): the
    // record still parses but the checksum must refuse it.
    const std::size_t at = bytes_.find("1.5");
    ASSERT_NE(at, std::string::npos);
    std::string mutated = bytes_;
    mutated[at] = '9';
    spit(path_, mutated);
    EXPECT_EQ(loadKind(), PointFileError::Kind::ChecksumMismatch);
    EXPECT_NE(what_.find(path_), std::string::npos);
    EXPECT_NE(what_.find("expected"), std::string::npos);
    EXPECT_NE(what_.find("actual"), std::string::npos);
}

TEST_F(PointCorruption, TruncationIsRejected)
{
    spit(path_, bytes_.substr(0, bytes_.size() / 2));
    EXPECT_EQ(loadKind(), PointFileError::Kind::NotARecord);
}

TEST_F(PointCorruption, TrailingGarbageIsRejected)
{
    spit(path_, bytes_ + "{\"extra\":1}");
    EXPECT_EQ(loadKind(), PointFileError::Kind::NotARecord);
}

TEST_F(PointCorruption, ChecksumFieldTamperIsRejected)
{
    // Alter the stored checksum itself.
    const std::size_t tag = bytes_.find("\"crc32c\":\"");
    ASSERT_NE(tag, std::string::npos);
    std::string mutated = bytes_;
    const std::size_t digit = tag + 10;
    mutated[digit] = mutated[digit] == '0' ? '1' : '0';
    spit(path_, mutated);
    EXPECT_EQ(loadKind(), PointFileError::Kind::ChecksumMismatch);
}

TEST_F(PointCorruption, V1RecordWithoutChecksumIsRecomputed)
{
    // A pre-v2 file has no crc32c suffix: typed as NotARecord, which
    // the sweep resume path treats as "recompute", never "skip".
    const std::size_t tag = bytes_.find(",\"crc32c\":");
    ASSERT_NE(tag, std::string::npos);
    spit(path_, bytes_.substr(0, tag) + "}\n");
    EXPECT_EQ(loadKind(), PointFileError::Kind::NotARecord);
}

TEST_F(PointCorruption, MissingFileIsTyped)
{
    std::filesystem::remove(path_);
    EXPECT_EQ(loadKind(), PointFileError::Kind::OpenFailed);
}

// ------------------------------------------------------------------
// Short writes / ENOSPC in the atomic writers
// ------------------------------------------------------------------

long
enospcHook(int /*fd*/, const void * /*buf*/, std::size_t /*n*/)
{
    errno = ENOSPC;
    return -1;
}

long
shortThenFailHook(int fd, const void *buf, std::size_t n)
{
    static thread_local bool first = true;
    if (first && n > 4) {
        first = false;
        return ::write(fd, buf, 4); // short write, then the disk fills
    }
    errno = ENOSPC;
    return -1;
}

class AtomicWriteFailure : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = tmpPath("atomic.json");
        std::filesystem::remove(path_);
        std::filesystem::remove(path_ + ".tmp");
    }

    void
    TearDown() override
    {
        detail::g_atomic_write_hook = nullptr;
        std::filesystem::remove(path_);
        std::filesystem::remove(path_ + ".tmp");
    }

    std::string path_;
};

TEST_F(AtomicWriteFailure, EnospcIsStructuredAndLeavesNothing)
{
    detail::g_atomic_write_hook = &enospcHook;
    FileError err;
    EXPECT_FALSE(writeFileAtomicChecked(path_, "content", true, &err));
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(err.stage, "write");
    EXPECT_EQ(err.err, ENOSPC);
    EXPECT_NE(err.message().find(path_), std::string::npos);
    // No plausible partial file, no leftover tmp.
    EXPECT_FALSE(std::filesystem::exists(path_));
    EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(AtomicWriteFailure, ShortWriteThenFailureKeepsOldContent)
{
    ASSERT_TRUE(writeFileAtomicChecked(path_, "old content\n", true));
    detail::g_atomic_write_hook = &shortThenFailHook;
    FileError err;
    EXPECT_FALSE(writeFileAtomicChecked(
        path_, "replacement that never lands\n", true, &err));
    detail::g_atomic_write_hook = nullptr;
    EXPECT_EQ(err.stage, "write");
    // The target still holds the previous, complete artifact.
    EXPECT_EQ(slurp(path_), "old content\n");
    EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(AtomicWriteFailure, SnapshotWriteFailureIsReported)
{
    detail::g_atomic_write_hook = &enospcHook;
    SnapshotWriter w;
    w.u64(7);
    FileError err;
    EXPECT_FALSE(w.writeFile(path_, &err));
    EXPECT_EQ(err.stage, "write");
    EXPECT_EQ(err.err, ENOSPC);
    EXPECT_FALSE(std::filesystem::exists(path_));
}

TEST_F(AtomicWriteFailure, PointWriteFailureIsReported)
{
    detail::g_atomic_write_hook = &enospcHook;
    FileError err;
    EXPECT_FALSE(writePointFile(path_, samplePoint(), &err));
    EXPECT_EQ(err.stage, "write");
    EXPECT_FALSE(std::filesystem::exists(path_));
}

TEST_F(AtomicWriteFailure, ZeroByteWriteIsShortWrite)
{
    detail::g_atomic_write_hook =
        [](int, const void *, std::size_t) -> long { return 0; };
    FileError err;
    EXPECT_FALSE(writeFileAtomicChecked(path_, "x", true, &err));
    EXPECT_EQ(err.stage, "write");
    EXPECT_EQ(err.err, ENOSPC);
}

} // namespace
} // namespace espnuca
