/**
 * @file
 * Watchdog tests: unit-level stall/ceiling/progress behaviour against a
 * bare EventQueue, and the end-to-end guarantee that an induced
 * protocol stall (a dropped completion) becomes a clean WatchdogError
 * with a diagnostic dump instead of a hang or a silent corruption.
 *
 * The end-to-end cases double as the ctest hang test: the binary runs
 * under a ctest TIMEOUT, so a regressed watchdog that lets the stall
 * spin forever fails the suite by timeout instead of wedging CI.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>

#include "fault/fault_plan.hpp"
#include "fault/watchdog.hpp"
#include "harness/system.hpp"
#include "sim/event_queue.hpp"

namespace espnuca {
namespace {

/** Keep the queue alive forever (a livelock heartbeat). */
void
heartbeat(EventQueue &eq, Cycle period)
{
    eq.schedule(period, [&eq, period]() { heartbeat(eq, period); });
}

TEST(Watchdog, DisabledWatchdogNeverArms)
{
    EventQueue eq;
    Watchdog wd(eq, WatchdogConfig{}, []() { return 0u; },
                []() { return 0u; }, []() { return std::string(); });
    EXPECT_FALSE(wd.enabled());
    wd.arm(); // no-op
    eq.schedule(5, []() {});
    eq.run();
    EXPECT_EQ(wd.checksRun(), 0u);
}

TEST(Watchdog, StallWithInFlightThrows)
{
    EventQueue eq;
    heartbeat(eq, 10);
    Watchdog wd(
        eq, WatchdogConfig{/*stallBudget=*/200, 0, 0},
        []() { return 0u; },        // progress never advances
        []() { return 1u; },        // one transaction stuck
        []() { return std::string("dump-payload"); });
    wd.arm();
    try {
        eq.runUntil(100000);
        FAIL() << "watchdog did not fire";
    } catch (const WatchdogError &e) {
        EXPECT_NE(std::string(e.what()).find("no forward progress"),
                  std::string::npos);
        EXPECT_EQ(e.dump(), "dump-payload");
        EXPECT_LE(eq.now(), 1000u); // caught promptly, not at the limit
    }
}

TEST(Watchdog, ProgressResetsTheStallClock)
{
    EventQueue eq;
    heartbeat(eq, 10);
    std::uint64_t progress = 0;
    // Progress advances every cycle until t=600, then freezes with a
    // transaction outstanding: the watchdog must fire ~stallBudget
    // after the freeze, not before.
    Watchdog wd(
        eq, WatchdogConfig{/*stallBudget=*/200, 0, 0},
        [&eq, &progress]() {
            return eq.now() < 600 ? ++progress : progress;
        },
        []() { return 1u; }, []() { return std::string(); });
    wd.arm();
    EXPECT_THROW(eq.runUntil(100000), WatchdogError);
    EXPECT_GE(eq.now(), 750u);
    EXPECT_LE(eq.now(), 1200u);
}

TEST(Watchdog, NoThrowWhileIdleInFlight)
{
    EventQueue eq;
    heartbeat(eq, 10);
    // Zero transactions outstanding: an idle-but-alive system (e.g. a
    // polling core model) is not a stall however long it idles.
    Watchdog wd(eq, WatchdogConfig{/*stallBudget=*/100, 0, 0},
                []() { return 0u; }, []() { return 0u; },
                []() { return std::string(); });
    wd.arm();
    EXPECT_NO_THROW(eq.runUntil(5000));
    EXPECT_GT(wd.checksRun(), 0u);
}

TEST(Watchdog, CycleCeilingThrows)
{
    EventQueue eq;
    heartbeat(eq, 10);
    std::uint64_t progress = 0;
    Watchdog wd(
        eq, WatchdogConfig{0, /*maxCycles=*/1000, 0},
        [&progress]() { return ++progress; }, // always "making progress"
        []() { return 1u; }, []() { return std::string(); });
    wd.arm();
    EXPECT_THROW(eq.runUntil(100000), WatchdogError);
    EXPECT_LE(eq.now(), 2000u);
}

TEST(Watchdog, CheckDrainedReportsOutstandingTransactions)
{
    EventQueue eq;
    Watchdog wd(eq, WatchdogConfig{}, []() { return 0u; },
                []() { return 2u; },
                []() { return std::string("post-mortem"); });
    try {
        wd.checkDrained();
        FAIL() << "drained check did not fire";
    } catch (const WatchdogError &e) {
        EXPECT_NE(std::string(e.what()).find("2 transaction(s)"),
                  std::string::npos);
        EXPECT_EQ(e.dump(), "post-mortem");
    }
}

TEST(Watchdog, InducedProtocolStallFailsCleanly)
{
    // Acceptance: drop one completion mid-run; the run must end with a
    // WatchdogError carrying the protocol diagnostic dump — within this
    // binary's ctest timeout — rather than hanging or asserting.
    SystemConfig cfg;
    const FaultPlan plan =
        FaultPlan::parse("drop-tx=40;watchdog=20000:2000000");
    try {
        simulate(cfg, "esp-nuca", "apache", 3000, 11, 0.0, &plan);
        FAIL() << "stalled run completed";
    } catch (const WatchdogError &e) {
        const std::string dump = e.dump();
        EXPECT_NE(dump.find("transaction(s) in flight"),
                  std::string::npos);
        EXPECT_NE(dump.find("tx 40"), std::string::npos);
        EXPECT_NE(dump.find("lock"), std::string::npos);
        EXPECT_NE(dump.find("pending="), std::string::npos);
    }
}

TEST(Watchdog, ArmedRunIsBitIdenticalToUnarmed)
{
    // The watchdog only reads state: the same healthy run with and
    // without an (untriggered) watchdog produces identical statistics.
    SystemConfig cfg;
    const RunResult plain =
        simulate(cfg, "esp-nuca", "apache", 3000, 13, 0.0);
    const FaultPlan plan = FaultPlan::parse("watchdog=1000000");
    const RunResult watched =
        simulate(cfg, "esp-nuca", "apache", 3000, 13, 0.0, &plan);
    EXPECT_EQ(plain.cycles, watched.cycles);
    EXPECT_EQ(plain.networkFlits, watched.networkFlits);
    EXPECT_EQ(plain.throughput, watched.throughput);
    EXPECT_EQ(plain.offChipAccesses, watched.offChipAccesses);
}

} // namespace
} // namespace espnuca
