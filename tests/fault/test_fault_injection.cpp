/**
 * @file
 * Fault-injection mechanics: way fencing in sets and banks, bank-outage
 * remapping in the address map, link degradation windows, and the
 * injector wiring everything into an assembled system.
 */

#include <gtest/gtest.h>

#include "arch/arch_factory.hpp"
#include "cache/address_map.hpp"
#include "cache/cache_bank.hpp"
#include "cache/cache_set.hpp"
#include "cache/replacement.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "net/link.hpp"
#include "net/mesh.hpp"
#include "net/topology.hpp"

namespace espnuca {
namespace {

TEST(CacheSetFault, DisabledWaysAreNeverAllocated)
{
    CacheSet set(4);
    set.disableWays(0x3); // ways 0 and 1
    EXPECT_TRUE(set.wayDisabled(0));
    EXPECT_TRUE(set.wayDisabled(1));
    EXPECT_FALSE(set.wayDisabled(2));
    EXPECT_EQ(set.enabledWays(), 2u);
    // invalidWay only ever offers the live ways.
    EXPECT_EQ(set.invalidWay(), 2);
    BlockMeta blk;
    blk.valid = true;
    blk.addr = 0x100;
    set.assign(2, blk);
    EXPECT_EQ(set.invalidWay(), 3);
    blk.addr = 0x200;
    set.assign(3, blk);
    EXPECT_EQ(set.invalidWay(), kNoWay);
    // Disabled ways are invalid, so LRU selection skips them too.
    EXPECT_NE(set.lruWay(), 0);
    EXPECT_NE(set.lruWay(), 1);
}

TEST(CacheSetFault, MaskIsClampedToWayCount)
{
    CacheSet set(4);
    set.disableWays(~std::uint64_t{0} << 2); // high bits ignored
    EXPECT_EQ(set.enabledWays(), 2u);
    EXPECT_EQ(set.invalidWay(), 0);
}

TEST(CacheBankFault, FullyDisabledBankRefusesInserts)
{
    SystemConfig cfg;
    CacheBank bank(cfg, 0, std::make_shared<FlatLru>());
    bank.disableWays((std::uint64_t{1} << cfg.l2Ways) - 1);
    EXPECT_EQ(bank.disabledWays(), cfg.l2Ways);
    BlockMeta blk;
    blk.valid = true;
    blk.addr = 0x4000;
    blk.cls = BlockClass::Shared;
    const InsertResult res = bank.insert(0, blk);
    EXPECT_FALSE(res.inserted);
    EXPECT_FALSE(res.evicted.valid);
}

TEST(CacheBankFault, PartiallyDisabledBankStillServes)
{
    SystemConfig cfg;
    CacheBank bank(cfg, 0, std::make_shared<FlatLru>());
    bank.disableWays(0x3);
    EXPECT_EQ(bank.disabledWays(), 2u);
    // Fill beyond the reduced associativity: every insert must land in
    // a live way and eventually evict, never resurrect a disabled way.
    for (std::uint64_t i = 0; i < cfg.l2Ways * 2; ++i) {
        BlockMeta blk;
        blk.valid = true;
        blk.addr = 0x10000 + (i << 20); // same set, distinct tags
        blk.cls = BlockClass::Shared;
        EXPECT_TRUE(bank.insert(0, blk).inserted);
    }
    EXPECT_FALSE(bank.set(0).way(0).valid);
    EXPECT_FALSE(bank.set(0).way(1).valid);
    EXPECT_EQ(bank.set(0).countIf(kMatchAny),
              cfg.l2Ways - 2);
}

TEST(AddressMapFault, RemapRedirectsBothInterpretations)
{
    SystemConfig cfg;
    AddressMap map(cfg);
    EXPECT_FALSE(map.remapped());
    std::vector<BankId> table(cfg.l2Banks);
    for (BankId b = 0; b < cfg.l2Banks; ++b)
        table[b] = b;
    table[3] = 4; // bank 3 died
    map.setBankRemap(table);
    EXPECT_TRUE(map.remapped());
    // Any address whose shared home was bank 3 now lands on bank 4;
    // sets and tags are untouched.
    const Addr a = Addr{3} << cfg.blockOffsetBits();
    EXPECT_EQ(map.sharedBank(a), 4u);
    const AddressMap healthy(cfg);
    EXPECT_EQ(map.sharedSet(a), healthy.sharedSet(a));
    EXPECT_EQ(map.sharedTag(a), healthy.sharedTag(a));
    // Private interpretation of core 0's local bank 3 also redirects.
    const Addr pa = Addr{3} << cfg.blockOffsetBits();
    EXPECT_EQ(map.privateBank(0, pa), 4u);
}

TEST(LinkFault, DegradationWindowStretchesSerialization)
{
    Link l;
    l.degrade(0, 100, 4);
    // Inside the window a 5-flit message serializes as 20 flits:
    // start 0, latency 2, tail at 0 + 2 + 19.
    EXPECT_EQ(l.transmit(0, 5, 2), 21u);
    EXPECT_EQ(l.degradedCycles(), 15u);
    // Outside the window behaviour is nominal.
    EXPECT_EQ(l.transmit(500, 5, 2), 506u);
    EXPECT_EQ(l.factorAt(50), 4u);
    EXPECT_EQ(l.factorAt(100), 1u);
}

TEST(LinkFault, OverlappingWindowsTakeWorstFactor)
{
    Link l;
    l.degrade(0, 100, 2);
    l.degrade(50, 80, 8);
    EXPECT_EQ(l.factorAt(60), 8u);
    EXPECT_EQ(l.factorAt(90), 2u);
}

TEST(LinkFault, IntervalListIsHardCapped)
{
    Link l;
    // Far-future reservations with gaps too small for later messages
    // to backfill: the list would grow one interval per message.
    for (std::uint64_t i = 0; i < Link::kMaxIntervals * 2; ++i)
        l.transmit(i * 3, 2, 1);
    EXPECT_LE(l.intervals(), Link::kMaxIntervals);
    EXPECT_GE(l.peakIntervals(), l.intervals());
}

TEST(LinkFault, CompactionOnlyOverReserves)
{
    Link l;
    for (std::uint64_t i = 0; i < Link::kMaxIntervals + 8; ++i)
        l.transmit(i * 10, 2, 1);
    if (l.compactions() > 0) {
        // After compaction a fresh arrival is scheduled no earlier than
        // the uncompacted schedule would have allowed — the busy list
        // only gained time, so earliestStart is monotone-safe.
        EXPECT_GE(l.earliestStart(0, 2), 0u);
    }
    EXPECT_LE(l.intervals(), Link::kMaxIntervals);
}

TEST(Injector, AppliesPlanToAssembledSystem)
{
    SystemConfig cfg;
    Topology topo(cfg);
    EventQueue eq;
    Mesh mesh(topo, eq);
    auto org = makeArch("shared", cfg, /*seed=*/1);
    Protocol proto(cfg, topo, mesh, eq, *org);

    const FaultPlan plan = FaultPlan::parse(
        "seed=5;bank=6;ways=*:0x3;link=1:e:0:50000:4");
    const InjectionReport rep =
        applyFaultPlan(plan, cfg, topo, *org, proto, mesh);

    EXPECT_EQ(rep.deadBanks, 1u);
    EXPECT_EQ(rep.degradedLinks, 1u);
    EXPECT_TRUE(org->map().remapped());
    EXPECT_TRUE(proto.map().remapped());
    EXPECT_EQ(org->map().remap(6), 7u);
    // The dead bank is belt-and-braces fenced; live banks lost 2 ways.
    EXPECT_EQ(org->bank(6).disabledWays(), cfg.l2Ways);
    EXPECT_EQ(org->bank(0).disabledWays(), 2u);
    EXPECT_EQ(mesh.linkAt(1, Mesh::East).factorAt(100), 4u);
    EXPECT_EQ(mesh.linkAt(1, Mesh::East).factorAt(50000), 1u);
    // No address ever resolves to the dead bank any more.
    for (Addr a = 0; a < (Addr{1} << 16); a += cfg.blockBytes)
        EXPECT_NE(org->map().sharedBank(a), 6u);
}

TEST(Injector, RejectsOutOfRangeLinkNode)
{
    SystemConfig cfg;
    Topology topo(cfg);
    EventQueue eq;
    Mesh mesh(topo, eq);
    auto org = makeArch("shared", cfg, 1);
    Protocol proto(cfg, topo, mesh, eq, *org);
    const FaultPlan plan = FaultPlan::parse("link=99:e:0:10:2");
    EXPECT_THROW(applyFaultPlan(plan, cfg, topo, *org, proto, mesh),
                 FaultPlanError);
}

} // namespace
} // namespace espnuca
