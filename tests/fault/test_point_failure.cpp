/**
 * @file
 * Crash-isolated experiment harness: a poisoned data point exhausts its
 * retry budget and lands as structured PointFailure records while every
 * other point of the matrix completes normally; successful runs stay
 * bit-identical to the pre-retry harness; the JSON report carries the
 * failures only for the poisoned point.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/experiment.hpp"
#include "harness/json.hpp"
#include "harness/report.hpp"

namespace espnuca {
namespace {

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.opsPerCore = 3000;
    cfg.runs = 2;
    cfg.baseSeed = 777;
    cfg.warmupFraction = 0.0;
    cfg.jobs = 1;
    return cfg;
}

TEST(AttemptRun, FirstAttemptUsesTheLegacySeed)
{
    const ExperimentConfig cfg = smallConfig();
    EXPECT_EQ(cfg.seedOf(1, 0), cfg.seedOf(1));
    EXPECT_NE(cfg.seedOf(1, 1), cfg.seedOf(1));
    // Retry seeds are a pure function of (baseSeed, r, attempt).
    EXPECT_EQ(cfg.seedOf(1, 1), cfg.seedOf(1, 1));
    EXPECT_NE(cfg.seedOf(1, 1), cfg.seedOf(1, 2));

    const RunOutcome out = attemptRun(cfg, "esp-nuca", "apache", 1);
    ASSERT_TRUE(out.result.has_value());
    const RunResult direct =
        simulate(cfg.system, "esp-nuca", "apache", cfg.opsPerCore,
                 cfg.seedOf(1), cfg.warmupFraction);
    EXPECT_EQ(out.result->cycles, direct.cycles);
    EXPECT_EQ(out.result->networkFlits, direct.networkFlits);
    EXPECT_EQ(out.result->throughput, direct.throughput);
}

TEST(AttemptRun, PoisonedPlanExhaustsRetriesIntoAFailure)
{
    ExperimentConfig cfg = smallConfig();
    cfg.faultPlan = "drop-tx=40"; // every attempt stalls the same way
    cfg.maxAttempts = 2;
    const RunOutcome out = attemptRun(cfg, "esp-nuca", "apache", 0);
    ASSERT_FALSE(out.result.has_value());
    EXPECT_EQ(out.failure.runIndex, 0u);
    EXPECT_EQ(out.failure.attempts, 2u);
    EXPECT_EQ(out.failure.seed, cfg.seedOf(0, 1)); // final attempt's seed
    EXPECT_NE(out.failure.error.find("in flight"), std::string::npos);
}

TEST(AttemptRun, UnparsablePlanFailsWithoutSimulating)
{
    ExperimentConfig cfg = smallConfig();
    cfg.faultPlan = "frob=1";
    const RunOutcome out = attemptRun(cfg, "esp-nuca", "apache", 3);
    ASSERT_FALSE(out.result.has_value());
    EXPECT_EQ(out.failure.attempts, 0u);
    EXPECT_NE(out.failure.error.find("fault plan"), std::string::npos);
}

TEST(Matrix, PoisonedPointIsIsolatedFromHealthyPoints)
{
    const ExperimentConfig healthy = smallConfig();
    ExperimentConfig poisoned = healthy;
    poisoned.faultPlan = "drop-tx=40";
    poisoned.maxAttempts = 2;

    ExperimentMatrix m(healthy);
    m.add(healthy, "esp-nuca", "apache", "good");
    m.add(poisoned, "esp-nuca", "apache", "bad");
    m.add(healthy, "sp-nuca", "apache", "good2");
    m.run();

    const DataPoint &good = m.at("good");
    EXPECT_TRUE(good.failures.empty());
    EXPECT_EQ(good.throughput.count(), healthy.runs);

    const DataPoint &bad = m.at("bad");
    EXPECT_EQ(bad.failures.size(), poisoned.runs);
    EXPECT_EQ(bad.throughput.count(), 0u);
    for (const RunFailure &f : bad.failures)
        EXPECT_EQ(f.attempts, poisoned.maxAttempts);

    const DataPoint &good2 = m.at("good2");
    EXPECT_TRUE(good2.failures.empty());
    EXPECT_EQ(good2.throughput.count(), healthy.runs);
}

TEST(Matrix, ParallelHarvestMatchesSerialUnderFailures)
{
    ExperimentConfig poisoned = smallConfig();
    poisoned.faultPlan = "drop-tx=40";
    poisoned.maxAttempts = 2;

    ExperimentConfig serial_cfg = smallConfig();
    ExperimentMatrix serial(serial_cfg);
    serial.add(serial_cfg, "esp-nuca", "apache", "good");
    serial.add(poisoned, "esp-nuca", "apache", "bad");
    serial.run();

    ExperimentConfig par_cfg = smallConfig();
    par_cfg.jobs = 4;
    ExperimentConfig par_poisoned = poisoned;
    par_poisoned.jobs = 4;
    ExperimentMatrix parallel(par_cfg);
    parallel.add(par_cfg, "esp-nuca", "apache", "good");
    parallel.add(par_poisoned, "esp-nuca", "apache", "bad");
    parallel.run();

    EXPECT_EQ(serial.at("good").throughput.mean(),
              parallel.at("good").throughput.mean());
    EXPECT_EQ(serial.at("good").avgAccessTime.mean(),
              parallel.at("good").avgAccessTime.mean());
    ASSERT_EQ(serial.at("bad").failures.size(),
              parallel.at("bad").failures.size());
    for (std::size_t i = 0; i < serial.at("bad").failures.size(); ++i) {
        EXPECT_EQ(serial.at("bad").failures[i].seed,
                  parallel.at("bad").failures[i].seed);
        EXPECT_EQ(serial.at("bad").failures[i].runIndex,
                  parallel.at("bad").failures[i].runIndex);
    }
}

TEST(Report, FailuresAppearOnlyInPoisonedPoints)
{
    const ExperimentConfig healthy = smallConfig();
    ExperimentConfig poisoned = healthy;
    poisoned.faultPlan = "drop-tx=40";
    poisoned.maxAttempts = 1;

    ExperimentMatrix m(healthy);
    m.add(healthy, "esp-nuca", "apache", "good");
    m.add(poisoned, "esp-nuca", "apache", "bad");
    m.run();

    JsonWriter good;
    writePointJson(good, m.at("good"));
    EXPECT_EQ(good.str().find("\"failures\""), std::string::npos);

    JsonWriter bad;
    writePointJson(bad, m.at("bad"));
    const std::string doc = bad.str();
    EXPECT_NE(doc.find("\"failures\""), std::string::npos);
    EXPECT_NE(doc.find("\"attempts\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"error\":"), std::string::npos);

    JsonWriter bench;
    writeBenchJson(bench, "fault-bench", healthy, m.points());
    EXPECT_NE(bench.str().find("\"failures\""), std::string::npos);
}

} // namespace
} // namespace espnuca
