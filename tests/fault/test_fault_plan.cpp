/**
 * @file
 * FaultPlan grammar, validation, and deterministic resolution tests.
 */

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "fault/fault_plan.hpp"

namespace espnuca {
namespace {

TEST(FaultPlan, EmptySpecParsesEmpty)
{
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse("  ;  ; ").empty());
}

TEST(FaultPlan, ParsesEveryClause)
{
    const FaultPlan p = FaultPlan::parse(
        "seed=7; bank=3; bank=5; ways=2:0x6; ways=*:1; "
        "link=4:e:100:200:8; rand=1:2; drop-tx=40; watchdog=5000:90000");
    EXPECT_EQ(p.seed, 7u);
    ASSERT_EQ(p.deadBanks.size(), 2u);
    EXPECT_EQ(p.deadBanks[0], 3u);
    EXPECT_EQ(p.deadBanks[1], 5u);
    ASSERT_EQ(p.wayDisables.size(), 2u);
    EXPECT_EQ(p.wayDisables[0].bank, 2u);
    EXPECT_EQ(p.wayDisables[0].mask, 0x6u);
    EXPECT_EQ(p.wayDisables[1].bank, kInvalidBank);
    EXPECT_EQ(p.wayDisables[1].mask, 0x1u);
    ASSERT_EQ(p.linkFaults.size(), 1u);
    EXPECT_EQ(p.linkFaults[0].node, 4u);
    EXPECT_EQ(p.linkFaults[0].dir, 0u);
    EXPECT_EQ(p.linkFaults[0].from, 100u);
    EXPECT_EQ(p.linkFaults[0].until, 200u);
    EXPECT_EQ(p.linkFaults[0].factor, 8u);
    EXPECT_EQ(p.randDeadBanks, 1u);
    EXPECT_EQ(p.randWaysPerBank, 2u);
    EXPECT_EQ(p.dropTransaction, 40u);
    EXPECT_EQ(p.watchdogStall, 5000u);
    EXPECT_EQ(p.watchdogMax, 90000u);
}

TEST(FaultPlan, ToStringRoundTrips)
{
    const char *spec =
        "seed=7;bank=3;ways=*:0x3;link=2:w:0:500:4;rand=1:2;"
        "drop-tx=9;watchdog=1000:20000";
    const FaultPlan p = FaultPlan::parse(spec);
    const FaultPlan q = FaultPlan::parse(p.toString());
    EXPECT_EQ(p.toString(), q.toString());
    EXPECT_EQ(p.toString(), spec);
}

TEST(FaultPlan, RejectsMalformedInput)
{
    EXPECT_THROW(FaultPlan::parse("nonsense"), FaultPlanError);
    EXPECT_THROW(FaultPlan::parse("frob=1"), FaultPlanError);
    EXPECT_THROW(FaultPlan::parse("bank=abc"), FaultPlanError);
    EXPECT_THROW(FaultPlan::parse("bank=3junk"), FaultPlanError);
    EXPECT_THROW(FaultPlan::parse("ways=1"), FaultPlanError);
    EXPECT_THROW(FaultPlan::parse("ways=1:0"), FaultPlanError);
    EXPECT_THROW(FaultPlan::parse("link=1:x:0:10:2"), FaultPlanError);
    EXPECT_THROW(FaultPlan::parse("link=1:e:0:10"), FaultPlanError);
    EXPECT_THROW(FaultPlan::parse("watchdog=1:2:3"), FaultPlanError);
}

TEST(FaultPlan, ValidateChecksGeometry)
{
    SystemConfig cfg; // 32 banks, 16 ways
    EXPECT_NO_THROW(FaultPlan::parse("bank=31").validate(cfg));
    EXPECT_THROW(FaultPlan::parse("bank=32").validate(cfg),
                 FaultPlanError);
    EXPECT_THROW(FaultPlan::parse("ways=40:0x1").validate(cfg),
                 FaultPlanError);
    EXPECT_THROW(FaultPlan::parse("ways=0:0x10000").validate(cfg),
                 FaultPlanError); // 17th way of a 16-way bank
    EXPECT_THROW(FaultPlan::parse("link=0:e:10:10:2").validate(cfg),
                 FaultPlanError); // empty window
    EXPECT_THROW(FaultPlan::parse("link=0:e:0:10:0").validate(cfg),
                 FaultPlanError); // factor < 1
    EXPECT_THROW(FaultPlan::parse("rand=32:0").validate(cfg),
                 FaultPlanError); // kills every bank
    EXPECT_THROW(FaultPlan::parse("rand=0:16").validate(cfg),
                 FaultPlanError); // disables whole sets
}

TEST(FaultPlan, DeadBankResolutionIsDeterministic)
{
    SystemConfig cfg;
    const FaultPlan p = FaultPlan::parse("seed=11;bank=4;rand=3:0");
    const auto a = p.resolveDeadBanks(cfg);
    const auto b = p.resolveDeadBanks(cfg);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 4u); // 1 explicit + 3 random, deduplicated
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_LT(a[i - 1], a[i]); // ascending
    // A different seed picks a different set (overwhelmingly likely).
    const FaultPlan q = FaultPlan::parse("seed=12;bank=4;rand=3:0");
    EXPECT_NE(q.resolveDeadBanks(cfg), a);
}

TEST(FaultPlan, BankRemapRoutesAroundDeadBanks)
{
    SystemConfig cfg;
    const FaultPlan p = FaultPlan::parse("bank=0;bank=31");
    const auto table = p.bankRemap(cfg);
    ASSERT_EQ(table.size(), cfg.l2Banks);
    EXPECT_EQ(table[0], 1u);  // next live bank in ring order
    EXPECT_EQ(table[31], 1u); // wraps past dead bank 0
    for (BankId b = 1; b < 31; ++b)
        EXPECT_EQ(table[b], b); // live banks stay identity
}

TEST(FaultPlan, WayMasksCombineClausesAndFullMaskDeadBanks)
{
    SystemConfig cfg;
    const FaultPlan p =
        FaultPlan::parse("seed=3;bank=2;ways=*:0x1;ways=5:0x4");
    const auto masks = p.resolveWayMasks(cfg);
    ASSERT_EQ(masks.size(), cfg.l2Banks);
    const std::uint64_t full = (std::uint64_t{1} << cfg.l2Ways) - 1;
    EXPECT_EQ(masks[2], full);        // dead bank: everything fenced
    EXPECT_EQ(masks[5], 0x5u);        // global 0x1 | per-bank 0x4
    EXPECT_EQ(masks[7], 0x1u);        // global clause only
}

TEST(FaultPlan, RandomWayMasksAreDeterministicAndSized)
{
    SystemConfig cfg;
    const FaultPlan p = FaultPlan::parse("seed=21;rand=0:2");
    const auto a = p.resolveWayMasks(cfg);
    EXPECT_EQ(a, p.resolveWayMasks(cfg));
    for (BankId b = 0; b < cfg.l2Banks; ++b)
        EXPECT_EQ(__builtin_popcountll(a[b]), 2);
}

} // namespace
} // namespace espnuca
