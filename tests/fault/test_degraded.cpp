/**
 * @file
 * Graceful degradation end-to-end: every architecture model keeps
 * running (with sane, bit-identical-across-runs statistics) under a
 * fault plan combining a bank outage, two disabled ways per bank, and a
 * link-degradation window; ESP-NUCA's protected-LRU and nmax machinery
 * stays consistent with the reduced associativity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "fault/fault_plan.hpp"
#include "harness/system.hpp"

namespace espnuca {
namespace {

/** The acceptance plan: dead bank + 2 dead ways + slow link window. */
FaultPlan
acceptancePlan()
{
    return FaultPlan::parse("seed=5;bank=6;ways=*:0x3;link=1:e:0:50000:4");
}

RunResult
degradedRun(const std::string &arch, std::uint64_t seed)
{
    SystemConfig cfg;
    const FaultPlan plan = acceptancePlan();
    return simulate(cfg, arch, "apache", 4000, seed, 0.0, &plan);
}

class DegradedArch : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DegradedArch, RunsToCompletionWithSaneStats)
{
    const RunResult r = degradedRun(GetParam(), 42);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.memOps, 0u);
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_TRUE(std::isfinite(r.throughput));
    EXPECT_TRUE(std::isfinite(r.avgIpc));
    EXPECT_TRUE(std::isfinite(r.avgAccessTime));
    EXPECT_GT(r.avgAccessTime, 0.0);
    EXPECT_TRUE(std::isfinite(r.onChipLatency));
    EXPECT_LE(r.l2DemandHits, r.l2DemandAccesses);
    // Every serviced reference is attributed to exactly one level.
    std::uint64_t level_total = 0;
    for (std::uint64_t c : r.levelCounts)
        level_total += c;
    EXPECT_GT(level_total, 0u);
    for (double c : r.levelContribution)
        EXPECT_TRUE(std::isfinite(c));
}

TEST_P(DegradedArch, BitIdenticalAcrossRuns)
{
    const RunResult a = degradedRun(GetParam(), 7);
    const RunResult b = degradedRun(GetParam(), 7);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.memOps, b.memOps);
    EXPECT_EQ(a.offChipAccesses, b.offChipAccesses);
    EXPECT_EQ(a.networkFlits, b.networkFlits);
    EXPECT_EQ(a.l2DemandAccesses, b.l2DemandAccesses);
    EXPECT_EQ(a.l2DemandHits, b.l2DemandHits);
    EXPECT_EQ(a.throughput, b.throughput); // bitwise double equality
    EXPECT_EQ(a.avgAccessTime, b.avgAccessTime);
}

INSTANTIATE_TEST_SUITE_P(AllModels, DegradedArch,
                         ::testing::Values("shared", "private", "sp-nuca",
                                           "esp-nuca", "d-nuca"));

TEST(DegradedEsp, ProtectedLruRespectsDisabledWays)
{
    SystemConfig cfg;
    const FaultPlan plan = acceptancePlan();
    const Workload wl = makeWorkload("apache", cfg, 4000, 3);
    System sys(cfg, "esp-nuca", wl, 3, 0.0, &plan);
    const RunResult r = sys.run();
    EXPECT_GT(r.instructions, 0u);

    for (BankId b = 0; b < sys.org().numBanks(); ++b) {
        const CacheBank &bank = sys.org().bank(b);
        const bool dead = b == 6;
        EXPECT_EQ(bank.disabledWays(), dead ? cfg.l2Ways : 2u);
        for (std::uint32_t s = 0; s < bank.numSets(); ++s) {
            const CacheSet &set = bank.set(s);
            // Fenced ways never hold data, under any insert path.
            for (std::uint32_t w = 0; w < set.numWays(); ++w) {
                if (set.wayDisabled(static_cast<int>(w))) {
                    EXPECT_FALSE(set.way(static_cast<int>(w)).valid);
                }
            }
            // The paper's per-set helping count can never exceed the
            // surviving associativity.
            EXPECT_LE(set.helpingCount(), set.enabledWays());
            EXPECT_LE(set.countIf(kMatchAny), set.enabledWays());
        }
        // The nmax monitor still reports a bound within the geometry.
        if (bank.monitor()) {
            EXPECT_LE(bank.monitor()->nmax(), cfg.l2Ways);
        }
    }
    // The dead bank served nothing: the remap kept traffic away.
    EXPECT_EQ(sys.org().bank(6).demandAccesses(), 0u);
}

TEST(DegradedEsp, TwoDisabledWaysStillHitAndLearn)
{
    // 1-2 disabled ways (satellite check): ESP-NUCA keeps producing
    // first-class hits and a plausible mean nmax.
    SystemConfig cfg;
    const FaultPlan plan = FaultPlan::parse("ways=*:0x1");
    const RunResult one =
        simulate(cfg, "esp-nuca", "apache", 4000, 9, 0.0, &plan);
    EXPECT_GT(one.l2DemandHits, 0u);
    EXPECT_GE(one.meanNmax, 0.0);
    EXPECT_LE(one.meanNmax, static_cast<double>(cfg.l2Ways));

    const FaultPlan plan2 = FaultPlan::parse("ways=*:0x3");
    const RunResult two =
        simulate(cfg, "esp-nuca", "apache", 4000, 9, 0.0, &plan2);
    EXPECT_GT(two.l2DemandHits, 0u);
    EXPECT_LE(two.meanNmax, static_cast<double>(cfg.l2Ways));
}

} // namespace
} // namespace espnuca
