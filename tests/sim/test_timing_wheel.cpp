/**
 * @file
 * Differential test of the timing-wheel EventQueue against the
 * reference binary-heap kernel (HeapEventQueue, the pre-wheel
 * implementation). Both queues replay identical (delay, payload)
 * streams — including delays beyond the near window, zero delays, and
 * events scheduled from inside callbacks — and must produce identical
 * (payload, fire-time) sequences. runUntil boundary semantics are
 * compared step for step as well.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/heap_event_queue.hpp"

namespace espnuca {
namespace {

struct Firing
{
    std::uint32_t payload;
    Cycle when;
    bool operator==(const Firing &) const = default;
};

/** Random delay mixing near (bounded link/bank) and far (DRAM-ish). */
Cycle
randomDelay(Rng &rng)
{
    switch (rng.below(10)) {
      case 0: return 0;                                   // same cycle
      case 1: return EventQueue::kWheelSpan - 1;          // window edge
      case 2: return EventQueue::kWheelSpan;              // first far
      case 3: return rng.below(EventQueue::kWheelSpan * 8); // far
      default: return rng.below(64);                      // typical hop
    }
}

/**
 * Drive one kernel with a seeded random schedule where every executed
 * event may itself schedule more events, then return the firing log.
 */
template <typename Queue>
std::vector<Firing>
runSchedule(std::uint64_t seed, std::uint32_t initial,
            std::uint32_t chained)
{
    Queue q;
    Rng rng(seed);
    std::vector<Firing> log;
    std::uint32_t next_payload = 0;
    std::uint32_t budget = chained;

    // The callback re-captures everything it needs by value except the
    // shared driver state, mirroring how protocol events chain.
    struct Driver
    {
        Queue &q;
        Rng &rng;
        std::vector<Firing> &log;
        std::uint32_t &next_payload;
        std::uint32_t &budget;

        void
        fire(std::uint32_t payload)
        {
            log.push_back({payload, q.now()});
            if (budget == 0)
                return;
            // Chain 0-2 follow-up events from inside the callback.
            const std::uint32_t n = rng.below(3);
            for (std::uint32_t i = 0; i < n && budget > 0; ++i) {
                --budget;
                const std::uint32_t p = next_payload++;
                q.schedule(randomDelay(rng),
                           [this, p]() { fire(p); });
            }
        }
    };
    Driver d{q, rng, log, next_payload, budget};

    for (std::uint32_t i = 0; i < initial; ++i) {
        const std::uint32_t p = next_payload++;
        q.schedule(randomDelay(rng), [&d, p]() { d.fire(p); });
    }
    q.run();
    return log;
}

TEST(TimingWheelDifferential, RandomStreamsMatchReferenceHeap)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto wheel =
            runSchedule<EventQueue>(seed, 64, 2000);
        const auto heap =
            runSchedule<HeapEventQueue>(seed, 64, 2000);
        ASSERT_EQ(wheel.size(), heap.size()) << "seed " << seed;
        for (std::size_t i = 0; i < wheel.size(); ++i) {
            ASSERT_EQ(wheel[i], heap[i])
                << "seed " << seed << " divergence at firing " << i
                << ": wheel (" << wheel[i].payload << "@"
                << wheel[i].when << ") vs heap (" << heap[i].payload
                << "@" << heap[i].when << ")";
        }
    }
}

/**
 * runUntil boundary semantics: events exactly at the limit run, later
 * ones stay queued, and an emptied queue parks the clock at the limit.
 * Both kernels are stepped through the same ladder of limits.
 */
TEST(TimingWheelDifferential, RunUntilBoundariesMatchReferenceHeap)
{
    for (std::uint64_t seed = 20; seed <= 23; ++seed) {
        EventQueue wheel;
        HeapEventQueue heap;
        Rng rng(seed);
        std::vector<std::uint32_t> wheel_log, heap_log;

        std::vector<Cycle> times;
        for (int i = 0; i < 300; ++i)
            times.push_back(randomDelay(rng) * 4);
        for (std::uint32_t i = 0; i < times.size(); ++i) {
            wheel.scheduleAt(times[i],
                             [&wheel_log, i]() { wheel_log.push_back(i); });
            heap.scheduleAt(times[i],
                            [&heap_log, i]() { heap_log.push_back(i); });
        }

        // Ladder of limits, deliberately hitting exact event times
        // (even indices) and in-between cycles.
        std::vector<Cycle> limits = times;
        for (std::size_t i = 0; i < limits.size(); i += 2)
            limits[i] += 1;
        std::sort(limits.begin(), limits.end());
        for (Cycle limit : limits) {
            wheel.runUntil(limit);
            heap.runUntil(limit);
            ASSERT_EQ(wheel.now(), heap.now()) << "seed " << seed;
            ASSERT_EQ(wheel.pending(), heap.pending()) << "seed " << seed;
            ASSERT_EQ(wheel_log, heap_log) << "seed " << seed;
        }
        wheel.run();
        heap.run();
        EXPECT_EQ(wheel_log, heap_log);
        EXPECT_EQ(wheel.executed(), heap.executed());

        // Drained queues park exactly at a beyond-the-end limit.
        const Cycle far_limit = wheel.now() + 12345;
        wheel.runUntil(far_limit);
        heap.runUntil(far_limit);
        EXPECT_EQ(wheel.now(), far_limit);
        EXPECT_EQ(wheel.now(), heap.now());
    }
}

/** pending()/empty()/nextEventTime() agree while stepping manually. */
TEST(TimingWheelDifferential, StepwiseAccountingMatchesReferenceHeap)
{
    EventQueue wheel;
    HeapEventQueue heap;
    Rng rng(99);
    for (int i = 0; i < 500; ++i) {
        const Cycle d = randomDelay(rng);
        wheel.schedule(d, []() {});
        heap.schedule(d, []() {});
    }
    while (!heap.empty()) {
        ASSERT_FALSE(wheel.empty());
        ASSERT_EQ(wheel.nextEventTime(), heap.nextEventTime());
        ASSERT_EQ(wheel.pending(), heap.pending());
        wheel.step();
        heap.step();
        ASSERT_EQ(wheel.now(), heap.now());
    }
    EXPECT_TRUE(wheel.empty());
}

} // namespace
} // namespace espnuca
