/**
 * @file
 * Discrete-event kernel tests: ordering, determinism, clock semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace espnuca {
namespace {

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesFireInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.schedule(1, [&]() { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, ZeroDelayRunsAtSameTime)
{
    EventQueue eq;
    Cycle when = 999;
    eq.schedule(7, [&]() {
        eq.schedule(0, [&]() { when = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(when, 7u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&]() { ++fired; });
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(15, [&]() { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() { ++fired; });
    eq.schedule(2, [&]() { ++fired; });
    eq.step();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 1u);
}

TEST(EventQueue, ScheduleAtAbsolute)
{
    EventQueue eq;
    Cycle when = 0;
    eq.scheduleAt(42, [&]() { when = eq.now(); });
    eq.run();
    EXPECT_EQ(when, 42u);
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i, []() {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, HeavyInterleavingDeterministic)
{
    auto run_once = []() {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 200; ++i) {
            eq.schedule(static_cast<Cycle>((i * 7) % 20),
                        [&order, i]() { order.push_back(i); });
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace espnuca
