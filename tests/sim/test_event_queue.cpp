/**
 * @file
 * Discrete-event kernel tests: ordering, determinism, clock semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace espnuca {
namespace {

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesFireInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.schedule(1, [&]() { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, ZeroDelayRunsAtSameTime)
{
    EventQueue eq;
    Cycle when = 999;
    eq.schedule(7, [&]() {
        eq.schedule(0, [&]() { when = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(when, 7u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&]() { ++fired; });
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(15, [&]() { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() { ++fired; });
    eq.schedule(2, [&]() { ++fired; });
    eq.step();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 1u);
}

TEST(EventQueue, ScheduleAtAbsolute)
{
    EventQueue eq;
    Cycle when = 0;
    eq.scheduleAt(42, [&]() { when = eq.now(); });
    eq.run();
    EXPECT_EQ(when, 42u);
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i, []() {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

/**
 * Regression for the pre-wheel kernel's const_cast move-from-top():
 * same-cycle events must fire in strict insertion order, including
 * events scheduled *during* step() at the current cycle — they join
 * the back of the current cycle's FIFO, after everything already
 * queued for that cycle.
 */
TEST(EventQueue, SameCycleStrictInsertionOrderAcrossNestedSchedules)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() {
        order.push_back(0);
        // Scheduled mid-step at the current cycle: must run after B
        // and C (inserted earlier) but still at cycle 5.
        eq.schedule(0, [&]() {
            order.push_back(3);
            EXPECT_EQ(eq.now(), 5u);
            // Nested again, still same cycle: goes to the very back.
            eq.schedule(0, [&]() { order.push_back(5); });
        });
        eq.schedule(0, [&]() { order.push_back(4); });
    });
    eq.schedule(5, [&]() { order.push_back(1); });
    eq.schedule(5, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
    EXPECT_EQ(eq.now(), 5u);
}

/** Same-cycle ordering driven step() by step(), not via run(). */
TEST(EventQueue, StepPreservesInsertionOrderWithinCycle)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        eq.schedule(2, [&order, i]() { order.push_back(i); });
    eq.step();
    // Mid-cycle, schedule two more at the *current* cycle.
    eq.schedule(0, [&]() { order.push_back(4); });
    eq.schedule(0, [&]() { order.push_back(5); });
    while (!eq.empty())
        eq.step();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

/**
 * Insertion order must hold when the tie straddles the two wheel
 * levels: an event far-scheduled at T (beyond the near window), then —
 * after the clock advanced enough that T is within the window — a
 * near-scheduled event at the same T. The far event was inserted
 * first, so it fires first.
 */
TEST(EventQueue, FarThenNearAtSameCycleFiresInInsertionOrder)
{
    constexpr Cycle kFar = EventQueue::kWheelSpan * 3 + 17;
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(kFar, [&]() { order.push_back(0); }); // far level
    eq.scheduleAt(EventQueue::kWheelSpan * 2, [&]() {
        // Now kFar is within the near window; same-cycle tie with the
        // migrated far event.
        eq.scheduleAt(kFar, [&]() { order.push_back(1); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.now(), kFar);
}

/** Ties among far-level events also fire in insertion order. */
TEST(EventQueue, FarLevelTiesFireInInsertionOrder)
{
    constexpr Cycle kFar = EventQueue::kWheelSpan * 10;
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleAt(kFar, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

/** Idle gaps larger than the wheel span advance the clock correctly. */
TEST(EventQueue, SparseFarEventsAdvanceAcrossWindows)
{
    EventQueue eq;
    std::vector<Cycle> fired;
    for (Cycle t : {Cycle{1}, Cycle{1000}, Cycle{100000}, Cycle{100001}})
        eq.scheduleAt(t, [&fired, &eq]() { fired.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(fired,
              (std::vector<Cycle>{1, 1000, 100000, 100001}));
}

TEST(EventQueue, HeavyInterleavingDeterministic)
{
    auto run_once = []() {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 200; ++i) {
            eq.schedule(static_cast<Cycle>((i * 7) % 20),
                        [&order, i]() { order.push_back(i); });
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace espnuca
