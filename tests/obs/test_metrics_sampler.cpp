/**
 * @file
 * Epoch-telemetry tests: the sampler produces a monotone time series
 * with the adaptive controller's state, never keeps a drained queue
 * alive (alone or together with the watchdog), never perturbs the
 * simulation, and is bit-identical across threads.
 */

#include <gtest/gtest.h>

#include <thread>

#include "fault/fault_plan.hpp"
#include "harness/system.hpp"
#include "obs/metrics_sampler.hpp"

namespace espnuca {
namespace {

TEST(MetricsSampler, SamplesAtTheConfiguredCadence)
{
    EventQueue eq;
    // Real work out to cycle 1000, then the queue drains.
    for (Cycle t = 100; t <= 1000; t += 100)
        eq.schedule(t, []() {});
    obs::MetricsSampler ms(eq, 250, [](obs::MetricsSample &) {});
    ms.arm();
    eq.run();
    // Ticks at 250/500/750/1000; the 1000 tick sees no real work left
    // and does not re-arm.
    ASSERT_EQ(ms.samples().size(), 4u);
    EXPECT_EQ(ms.samples()[0].cycle, 250u);
    EXPECT_EQ(ms.samples()[3].cycle, 1000u);
}

TEST(MetricsSampler, DoesNotKeepADrainedQueueAlive)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    obs::MetricsSampler ms(eq, 5, [](obs::MetricsSample &) {});
    ms.arm();
    eq.run();
    EXPECT_LE(eq.now(), 15u); // stopped at (or just past) the last work
}

TEST(MetricsSampler, EspRunYieldsAdaptiveTelemetry)
{
    SystemConfig cfg;
    const Workload wl = makeWorkload("apache", cfg, 5000, 7);
    System sys(cfg, "esp-nuca", wl, 7, 0.0);
    sys.enableMetrics(5000);
    const RunResult r = sys.run();
    ASSERT_FALSE(r.timeseries.empty());
    const obs::MetricsSample &last = r.timeseries.back();
    EXPECT_TRUE(last.hasMonitor); // ESP banks carry EMA monitors
    ASSERT_EQ(last.banks.size(), cfg.l2Banks);
    bool any_nmax = false, any_ema = false;
    for (const auto &b : last.banks) {
        any_nmax = any_nmax || b.nmax > 0;
        any_ema = any_ema || b.hrConv > 0 || b.hrRef > 0 || b.hrExp > 0;
    }
    EXPECT_TRUE(any_nmax);
    EXPECT_TRUE(any_ema);
    // Cumulative counters are monotone along the series.
    for (std::size_t i = 1; i < r.timeseries.size(); ++i) {
        EXPECT_GE(r.timeseries[i].meshFlits,
                  r.timeseries[i - 1].meshFlits);
        EXPECT_GE(r.timeseries[i].memAccesses,
                  r.timeseries[i - 1].memAccesses);
        EXPECT_GT(r.timeseries[i].cycle, r.timeseries[i - 1].cycle);
    }
}

TEST(MetricsSampler, SamplingDoesNotPerturbTheRun)
{
    SystemConfig cfg;
    const RunResult plain =
        simulate(cfg, "esp-nuca", "apache", 4000, 3, 0.0);
    System sampled(cfg, "esp-nuca", makeWorkload("apache", cfg, 4000, 3),
                   3, 0.0);
    sampled.enableMetrics(2000);
    const RunResult r = sampled.run();
    EXPECT_EQ(plain.cycles, r.cycles);
    EXPECT_EQ(plain.throughput, r.throughput);
    EXPECT_EQ(plain.networkFlits, r.networkFlits);
    EXPECT_EQ(plain.offChipAccesses, r.offChipAccesses);
    EXPECT_FALSE(r.timeseries.empty());
    EXPECT_TRUE(plain.timeseries.empty());
}

TEST(MetricsSampler, TimeseriesIsBitIdenticalAcrossThreads)
{
    // The same (arch, workload, seed, interval) sampled on the main
    // thread and on a worker thread must agree sample-for-sample —
    // the parallel harness depends on this.
    SystemConfig cfg;
    auto sample = [&cfg]() {
        System sys(cfg, "esp-nuca", makeWorkload("oltp", cfg, 4000, 21),
                   21, 0.0);
        sys.enableMetrics(3000);
        return sys.run().timeseries;
    };
    const std::vector<obs::MetricsSample> serial = sample();
    std::vector<obs::MetricsSample> threaded;
    std::thread worker([&]() { threaded = sample(); });
    worker.join();
    ASSERT_FALSE(serial.empty());
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(serial[i] == threaded[i]) << "sample " << i;
}

TEST(MetricsSampler, CoexistsWithTheWatchdog)
{
    // Two auxiliary observers (sampler + watchdog) must not keep each
    // other alive after real work drains — the run has to terminate.
    SystemConfig cfg;
    const FaultPlan plan = FaultPlan::parse("watchdog=1000000");
    const Workload wl = makeWorkload("apache", cfg, 3000, 13);
    System sys(cfg, "esp-nuca", wl, 13, 0.0, &plan);
    sys.enableMetrics(2500);
    const RunResult r = sys.run();
    EXPECT_FALSE(r.timeseries.empty());
    const RunResult plain =
        simulate(cfg, "esp-nuca", "apache", 3000, 13, 0.0);
    EXPECT_EQ(plain.cycles, r.cycles);
    EXPECT_EQ(plain.throughput, r.throughput);
}

} // namespace
} // namespace espnuca
