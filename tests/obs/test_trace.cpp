/**
 * @file
 * Transaction tracing tests: TraceRecord round-trip through the Tracer,
 * ring-buffer tail semantics, category filtering, Chrome trace_event
 * export shape, the watchdog's trace-tail post-mortem, and the
 * guarantee that tracing never perturbs simulation statistics.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/fault_plan.hpp"
#include "harness/system.hpp"
#include "obs/trace_buffer.hpp"
#include "obs/trace_export.hpp"

namespace espnuca {
namespace {

#if ESPNUCA_OBS_ENABLED
#define OBS_REQUIRED() (void)0
#else
#define OBS_REQUIRED() GTEST_SKIP() << "observability compiled out"
#endif

TEST(Tracer, DisabledByDefaultRecordsNothing)
{
    obs::Tracer t;
    EXPECT_FALSE(t.enabled());
    t.record(obs::TraceKind::TxIssue, 10, 1, 0x40, 0, 0, 0);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.snapshot().empty());
}

TEST(Tracer, FullModeRoundTripsRecords)
{
    OBS_REQUIRED();
    obs::Tracer t;
    t.enableFull();
    t.record(obs::TraceKind::TxIssue, 100, 7, 0xABCD40, 0, 3, 1);
    t.record(obs::TraceKind::BankProbe, 120, 7, 0xABCD40, 5, 3, 2);
    t.record(obs::TraceKind::TxComplete, 150, 7, 0xABCD40, 1, 3, 4);
    const auto recs = t.snapshot();
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].kind, obs::TraceKind::TxIssue);
    EXPECT_EQ(recs[0].time, 100u);
    EXPECT_EQ(recs[0].tx, 7u);
    EXPECT_EQ(recs[0].addr, 0xABCD40u);
    EXPECT_EQ(recs[0].core, 3u);
    EXPECT_EQ(recs[1].kind, obs::TraceKind::BankProbe);
    EXPECT_EQ(recs[1].a, 5u);
    EXPECT_EQ(recs[1].b, 2u);
    EXPECT_EQ(recs[2].kind, obs::TraceKind::TxComplete);
    EXPECT_EQ(recs[2].b, 4u);
}

TEST(Tracer, RecordIs32Bytes)
{
    EXPECT_EQ(sizeof(obs::TraceRecord), 32u);
}

TEST(Tracer, RingKeepsOnlyTheTailInOrder)
{
    OBS_REQUIRED();
    obs::Tracer t;
    t.enableRing(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        t.record(obs::TraceKind::Hop, i, i, 0, 0, 0, 0);
    const auto recs = t.snapshot();
    ASSERT_EQ(recs.size(), 4u);
    // Oldest-first: records 6..9 survive.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(recs[i].time, 6 + i);
    const auto last2 = t.tail(2);
    ASSERT_EQ(last2.size(), 2u);
    EXPECT_EQ(last2[0].time, 8u);
    EXPECT_EQ(last2[1].time, 9u);
}

TEST(Tracer, CategoryMaskFiltersRecords)
{
    OBS_REQUIRED();
    obs::Tracer t;
    t.enableFull(obs::kCatTx);
    t.record(obs::TraceKind::TxIssue, 1, 1, 0, 0, 0, 0);    // tx: kept
    t.record(obs::TraceKind::BankProbe, 2, 1, 0, 0, 0, 0);  // bank: no
    t.record(obs::TraceKind::MemFill, 3, 1, 0, 0, 0, 0);    // core: no
    t.record(obs::TraceKind::Hop, 4, 1, 0, 0, 0, 0);        // tx: kept
    const auto recs = t.snapshot();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].kind, obs::TraceKind::TxIssue);
    EXPECT_EQ(recs[1].kind, obs::TraceKind::Hop);
}

TEST(Tracer, ParseTraceFilterWords)
{
    std::uint8_t mask = 0;
    EXPECT_TRUE(obs::parseTraceFilter("all", mask));
    EXPECT_EQ(mask, obs::kCatAll);
    EXPECT_TRUE(obs::parseTraceFilter("tx", mask));
    EXPECT_EQ(mask, obs::kCatTx);
    EXPECT_TRUE(obs::parseTraceFilter("bank", mask));
    EXPECT_EQ(mask, obs::kCatBank | obs::kCatTx);
    EXPECT_TRUE(obs::parseTraceFilter("core", mask));
    EXPECT_EQ(mask, obs::kCatCore | obs::kCatTx);
    EXPECT_FALSE(obs::parseTraceFilter("bogus", mask));
}

TEST(TraceExport, ChromeJsonHasSpansAndInstants)
{
    OBS_REQUIRED();
    obs::Tracer t;
    t.enableFull();
    t.record(obs::TraceKind::TxIssue, 100, 7, 0x40, 0, 2, 0);
    t.record(obs::TraceKind::Hop, 110, 7, 0, 3, 0, 1);
    t.record(obs::TraceKind::BankProbe, 120, 7, 0x40, 5, 2, 1);
    t.record(obs::TraceKind::TxComplete, 150, 7, 0x40, 1, 2, 2);
    t.record(obs::TraceKind::TxIssue, 160, 8, 0x80, 0, 1, 0); // dangling
    std::ostringstream os;
    obs::writeChromeTrace(os, t.snapshot());
    const std::string j = os.str();
    EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
    // The completed transaction became a span with the issue->complete
    // duration, on the transactions pid, tracked by core.
    EXPECT_NE(j.find("\"ph\":\"X\",\"ts\":100"), std::string::npos);
    EXPECT_NE(j.find("\"dur\":50"), std::string::npos);
    EXPECT_NE(j.find("\"name\":\"probe\""), std::string::npos);
    EXPECT_NE(j.find("\"name\":\"hop\""), std::string::npos);
    // The in-flight issue degraded to an instant, not dropped.
    EXPECT_NE(j.find("\"name\":\"tx-issue\""), std::string::npos);
    // Track metadata for the Perfetto UI.
    EXPECT_NE(j.find("process_name"), std::string::npos);
    EXPECT_NE(j.find("\"tx\":7"), std::string::npos);
}

TEST(TraceExport, EmptyCaptureIsStillValidJson)
{
    std::ostringstream os;
    obs::writeChromeTrace(os, {});
    const std::string j = os.str();
    EXPECT_NE(j.find("{\"traceEvents\":["), std::string::npos);
    EXPECT_NE(j.find("],\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceSystem, TracedRunEmitsFullTransactionLifecycles)
{
    OBS_REQUIRED();
    SystemConfig cfg;
    const Workload wl = makeWorkload("apache", cfg, 3000, 5);
    System sys(cfg, "esp-nuca", wl, 5, 0.0);
    sys.enableTracing();
    sys.run();
    std::uint64_t issues = 0, completes = 0, probes = 0, hops = 0;
    for (const auto &r : sys.tracer().snapshot()) {
        switch (r.kind) {
        case obs::TraceKind::TxIssue: ++issues; break;
        case obs::TraceKind::TxComplete: ++completes; break;
        case obs::TraceKind::BankProbe: ++probes; break;
        case obs::TraceKind::Hop: ++hops; break;
        default: break;
        }
    }
    EXPECT_GT(issues, 0u);
    EXPECT_EQ(issues, completes); // every transaction drained
    EXPECT_GT(probes, 0u);
    EXPECT_GT(hops, 0u);
}

TEST(TraceSystem, TracingDoesNotPerturbStatistics)
{
    SystemConfig cfg;
    const RunResult plain =
        simulate(cfg, "esp-nuca", "apache", 3000, 9, 0.0);
    System traced(cfg, "esp-nuca", makeWorkload("apache", cfg, 3000, 9),
                  9, 0.0);
    traced.enableTracing();
    const RunResult r = traced.run();
    EXPECT_EQ(plain.cycles, r.cycles);
    EXPECT_EQ(plain.throughput, r.throughput);
    EXPECT_EQ(plain.networkFlits, r.networkFlits);
    EXPECT_EQ(plain.offChipAccesses, r.offChipAccesses);
    EXPECT_EQ(plain.l2DemandHits, r.l2DemandHits);
}

TEST(TraceSystem, WatchdogStallShipsWithTraceTail)
{
    OBS_REQUIRED();
    // A dropped completion stalls the protocol; the WatchdogError dump
    // must carry the ring-buffer tail of recent trace records.
    SystemConfig cfg;
    const FaultPlan plan =
        FaultPlan::parse("drop-tx=40;watchdog=20000:2000000");
    try {
        simulate(cfg, "esp-nuca", "apache", 3000, 11, 0.0, &plan);
        FAIL() << "stalled run completed";
    } catch (const WatchdogError &e) {
        const std::string dump = e.dump();
        EXPECT_NE(dump.find("trace tail"), std::string::npos);
        // The tail holds the last pre-stall activity; hop records are
        // the densest kind, so at least one must be present.
        EXPECT_NE(dump.find("hop"), std::string::npos);
    }
}

} // namespace
} // namespace espnuca
