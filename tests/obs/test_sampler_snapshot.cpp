/**
 * @file
 * MetricsSampler snapshot/restore: the epoch-telemetry time series must
 * survive the warmup fast-forward. A checkpoint carries the warmup-side
 * samples, so a restored run's merged timeseries is element-identical
 * to the cold run's, continuous across the boundary — a plot drawn
 * from a restored run must be indistinguishable from a cold one.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>

#include "common/snapshot.hpp"
#include "harness/report.hpp"
#include "harness/system.hpp"

namespace espnuca {
namespace {

constexpr Cycle kInterval = 5'000;
constexpr std::uint64_t kOps = 12'000;
constexpr double kWarmup = 0.5;

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() /
            ("espnuca_sampler_" + name + ".ckpt"))
        .string();
}

RunResult
runSampled(const std::string &arch, const std::string &path,
           bool *restored)
{
    SystemConfig cfg;
    return simulatePhased(cfg, arch, "apache", kOps, /*seed=*/7, kWarmup,
                          /*fault=*/nullptr, path, restored,
                          /*stats_dump=*/nullptr, kInterval);
}

void
expectSameSeries(const std::vector<obs::MetricsSample> &a,
                 const std::vector<obs::MetricsSample> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("sample " + std::to_string(i));
        EXPECT_EQ(a[i].cycle, b[i].cycle);
        EXPECT_EQ(a[i].mshrDepth, b[i].mshrDepth);
        EXPECT_EQ(a[i].inFlight, b[i].inFlight);
        EXPECT_EQ(a[i].meshFlits, b[i].meshFlits);
        EXPECT_EQ(a[i].linkWait, b[i].linkWait);
        EXPECT_EQ(a[i].memAccesses, b[i].memAccesses);
        EXPECT_EQ(a[i].hasMonitor, b[i].hasMonitor);
        ASSERT_EQ(a[i].banks.size(), b[i].banks.size());
        for (std::size_t bk = 0; bk < a[i].banks.size(); ++bk) {
            EXPECT_EQ(a[i].banks[bk].nmax, b[i].banks[bk].nmax);
            EXPECT_EQ(a[i].banks[bk].replicas, b[i].banks[bk].replicas);
            EXPECT_EQ(a[i].banks[bk].victims, b[i].banks[bk].victims);
            EXPECT_EQ(a[i].banks[bk].demandAccesses,
                      b[i].banks[bk].demandAccesses);
            EXPECT_EQ(a[i].banks[bk].demandHits,
                      b[i].banks[bk].demandHits);
        }
    }
}

class SamplerSnapshot : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SamplerSnapshot, RestoredTimeseriesMatchesCold)
{
    const std::string arch = GetParam();
    const std::string path = tmpPath(arch);
    std::filesystem::remove(path);

    bool restored = false;
    const RunResult cold = runSampled(arch, path, &restored);
    EXPECT_FALSE(restored);
    ASSERT_FALSE(cold.timeseries.empty());
    ASSERT_TRUE(std::filesystem::exists(path));

    const RunResult warm = runSampled(arch, path, &restored);
    EXPECT_TRUE(restored);

    expectSameSeries(cold.timeseries, warm.timeseries);
    // The JSON documents (timeseries included) must be byte-identical.
    EXPECT_EQ(runToJson(cold), runToJson(warm));
    std::filesystem::remove(path);
}

TEST_P(SamplerSnapshot, SeriesIsContinuousAcrossBoundary)
{
    const std::string arch = GetParam();
    const std::string path = tmpPath(std::string(arch) + "_cont");
    std::filesystem::remove(path);

    bool restored = false;
    runSampled(arch, path, &restored);
    const RunResult warm = runSampled(arch, path, &restored);
    ASSERT_TRUE(restored);
    ASSERT_GE(warm.timeseries.size(), 2u);

    // Strictly increasing tick cycles: the restored tail continues the
    // warmup-side series instead of restarting at cycle 0. Within each
    // epoch ticks land one interval apart; only the single splice point
    // at the fast-forward boundary may carry a different (positive)
    // gap, because the tail epoch re-arms relative to the boundary
    // drain time.
    EXPECT_EQ(warm.timeseries.front().cycle, kInterval);
    std::size_t irregular = 0;
    for (std::size_t i = 1; i < warm.timeseries.size(); ++i) {
        ASSERT_LT(warm.timeseries[i - 1].cycle,
                  warm.timeseries[i].cycle);
        if (warm.timeseries[i].cycle - warm.timeseries[i - 1].cycle !=
            kInterval)
            ++irregular;
    }
    EXPECT_LE(irregular, 1u);
    std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(ArchModels, SamplerSnapshot,
                         ::testing::Values("shared", "esp-nuca",
                                           "d-nuca"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(SamplerSnapshot, IntervalMismatchFallsBackToCold)
{
    const std::string path = tmpPath("mismatch");
    std::filesystem::remove(path);

    bool restored = false;
    SystemConfig cfg;
    simulatePhased(cfg, "esp-nuca", "apache", kOps, 7, kWarmup, nullptr,
                   path, &restored, nullptr, kInterval);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Same identity, different sampling cadence: the checkpointed
    // sampler section no longer fits, so the run must fall back to a
    // cold warmup (and rewrite the checkpoint) instead of restoring a
    // series at the wrong cadence.
    const RunResult other =
        simulatePhased(cfg, "esp-nuca", "apache", kOps, 7, kWarmup,
                       nullptr, path, &restored, nullptr, kInterval * 2);
    EXPECT_FALSE(restored);
    ASSERT_FALSE(other.timeseries.empty());
    for (std::size_t i = 1; i < other.timeseries.size(); ++i)
        EXPECT_EQ(other.timeseries[i].cycle -
                      other.timeseries[i - 1].cycle,
                  kInterval * 2);
    std::filesystem::remove(path);
}

TEST(SamplerSnapshot, UnsampledRunRejectsSampledCheckpoint)
{
    const std::string path = tmpPath("presence");
    std::filesystem::remove(path);

    bool restored = false;
    SystemConfig cfg;
    simulatePhased(cfg, "esp-nuca", "apache", kOps, 7, kWarmup, nullptr,
                   path, &restored, nullptr, kInterval);
    ASSERT_TRUE(std::filesystem::exists(path));

    // No sampler this time: presence mismatch → cold fallback, and the
    // result carries no timeseries.
    const RunResult plain =
        simulatePhased(cfg, "esp-nuca", "apache", kOps, 7, kWarmup,
                       nullptr, path, &restored);
    EXPECT_FALSE(restored);
    EXPECT_TRUE(plain.timeseries.empty());
    std::filesystem::remove(path);
}

} // namespace
} // namespace espnuca
