/**
 * @file
 * Self-profiling tests: the runtime gate, scope accounting, per-thread
 * aggregation, and collection into a StatsRegistry under prof.*.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/profiler.hpp"
#include "stats/stats_registry.hpp"

namespace espnuca {
namespace {

#if ESPNUCA_OBS_ENABLED

/** Profiling is process-global state: restore it around every test. */
class ProfilerTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::ProfRegistry::instance().reset(); }
    void
    TearDown() override
    {
        obs::setProfiling(false);
        obs::ProfRegistry::instance().reset();
    }
};

std::uint64_t
callsOf(const char *site)
{
    for (const auto &[name, s] : obs::ProfRegistry::instance().snapshot())
        if (name == site)
            return s.calls;
    return 0;
}

TEST_F(ProfilerTest, DisabledGateRecordsNothing)
{
    EXPECT_FALSE(obs::profilingEnabled());
    for (int i = 0; i < 5; ++i) {
        ESP_PROF_SCOPE("test.off");
    }
    EXPECT_EQ(callsOf("test.off"), 0u);
}

TEST_F(ProfilerTest, ScopesCountCallsWhenEnabled)
{
    obs::setProfiling(true);
    for (int i = 0; i < 7; ++i) {
        ESP_PROF_SCOPE("test.on");
    }
    EXPECT_EQ(callsOf("test.on"), 7u);
}

TEST_F(ProfilerTest, ThreadsAggregateIndependently)
{
    obs::setProfiling(true);
    auto burn = []() {
        for (int i = 0; i < 100; ++i) {
            ESP_PROF_SCOPE("test.mt");
        }
    };
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w)
        workers.emplace_back(burn);
    for (auto &t : workers)
        t.join();
    burn();
    EXPECT_EQ(callsOf("test.mt"), 500u);
}

TEST_F(ProfilerTest, CollectWritesProfCounters)
{
    obs::setProfiling(true);
    {
        ESP_PROF_SCOPE("test.collect");
    }
    StatsRegistry reg;
    obs::ProfRegistry::instance().collect(reg);
    EXPECT_EQ(reg.counterValue("prof.test.collect.calls"), 1u);
    // Idle sites are skipped rather than reported as zero.
    EXPECT_EQ(reg.counterValue("prof.test.off.calls"), 0u);
}

TEST_F(ProfilerTest, ResetZeroesAccumulators)
{
    obs::setProfiling(true);
    {
        ESP_PROF_SCOPE("test.reset");
    }
    EXPECT_EQ(callsOf("test.reset"), 1u);
    obs::ProfRegistry::instance().reset();
    EXPECT_EQ(callsOf("test.reset"), 0u);
}

#else // !ESPNUCA_OBS_ENABLED

TEST(Profiler, CompiledOutMacroIsANoop)
{
    EXPECT_FALSE(obs::profilingEnabled());
    obs::setProfiling(true); // stub: stays off
    EXPECT_FALSE(obs::profilingEnabled());
    ESP_PROF_SCOPE("test.stub");
    StatsRegistry reg;
    obs::ProfRegistry::instance().collect(reg);
    EXPECT_EQ(reg.counterValue("prof.test.stub.calls"), 0u);
}

#endif // ESPNUCA_OBS_ENABLED

} // namespace
} // namespace espnuca
