/**
 * @file
 * Synthetic generator tests: determinism, region structure, mix ratios,
 * locality shape.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/trace_gen.hpp"

namespace espnuca {
namespace {

StreamParams
basicParams()
{
    StreamParams p;
    p.ops = 20000;
    p.gapMean = 3.0;
    p.ifetchFraction = 0.2;
    p.hotBytes = 64 * 1024;
    p.zipfTheta = 0.7;
    p.sharedBytes = 256 * 1024;
    p.sharedFraction = 0.3;
    p.writeFraction = 0.25;
    p.coreId = 2;
    p.appId = 1;
    return p;
}

TEST(SyntheticSource, DeterministicPerSeed)
{
    SystemConfig cfg;
    SyntheticSource a(cfg, basicParams(), 99);
    SyntheticSource b(cfg, basicParams(), 99);
    TraceOp x, y;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(a.next(x));
        ASSERT_TRUE(b.next(y));
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.type, y.type);
        EXPECT_EQ(x.gap, y.gap);
    }
}

TEST(SyntheticSource, DifferentSeedsDiffer)
{
    SystemConfig cfg;
    SyntheticSource a(cfg, basicParams(), 1);
    SyntheticSource b(cfg, basicParams(), 2);
    TraceOp x, y;
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        a.next(x);
        b.next(y);
        same += x.addr == y.addr;
    }
    EXPECT_LT(same, 100);
}

TEST(SyntheticSource, ExhaustsAfterOps)
{
    SystemConfig cfg;
    StreamParams p = basicParams();
    p.ops = 100;
    SyntheticSource s(cfg, p, 1);
    TraceOp op;
    int n = 0;
    while (s.next(op))
        ++n;
    EXPECT_EQ(n, 100);
    EXPECT_FALSE(s.next(op));
}

TEST(SyntheticSource, MixMatchesFractions)
{
    SystemConfig cfg;
    SyntheticSource s(cfg, basicParams(), 3);
    TraceOp op;
    int ifetch = 0, stores = 0, total = 0;
    while (s.next(op)) {
        ++total;
        ifetch += op.type == AccessType::Ifetch;
        stores += op.type == AccessType::Store;
    }
    EXPECT_NEAR(ifetch / double(total), 0.2, 0.02);
    // writeFraction applies to data accesses only.
    EXPECT_NEAR(stores / double(total), 0.25 * 0.8, 0.02);
}

TEST(SyntheticSource, RegionsAreDisjointPerCore)
{
    SystemConfig cfg;
    StreamParams p1 = basicParams();
    StreamParams p2 = basicParams();
    p2.coreId = 5;
    p1.sharedFraction = p2.sharedFraction = 0.0;
    p1.ifetchFraction = p2.ifetchFraction = 0.0;
    p1.osFraction = p2.osFraction = 0.0;
    SyntheticSource a(cfg, p1, 1), b(cfg, p2, 1);
    std::set<Addr> sa, sb;
    TraceOp op;
    for (int i = 0; i < 2000; ++i) {
        a.next(op);
        sa.insert(op.addr & ~0x3Full);
        b.next(op);
        sb.insert(op.addr & ~0x3Full);
    }
    for (Addr x : sa)
        EXPECT_EQ(sb.count(x), 0u);
}

TEST(SyntheticSource, SharedRegionOverlapsAcrossCores)
{
    SystemConfig cfg;
    StreamParams p1 = basicParams();
    StreamParams p2 = basicParams();
    p2.coreId = 5;
    p1.sharedFraction = p2.sharedFraction = 1.0;
    p1.ifetchFraction = p2.ifetchFraction = 0.0;
    SyntheticSource a(cfg, p1, 1), b(cfg, p2, 2);
    std::set<Addr> sa;
    TraceOp op;
    for (int i = 0; i < 3000; ++i) {
        a.next(op);
        sa.insert(op.addr);
    }
    int overlap = 0;
    for (int i = 0; i < 3000; ++i) {
        b.next(op);
        overlap += sa.count(op.addr) != 0;
    }
    EXPECT_GT(overlap, 500);
}

TEST(SyntheticSource, ZipfConcentratesAccesses)
{
    SystemConfig cfg;
    StreamParams p = basicParams();
    p.sharedFraction = 0.0;
    p.ifetchFraction = 0.0;
    p.zipfTheta = 0.8;
    SyntheticSource s(cfg, p, 7);
    std::map<Addr, int> counts;
    TraceOp op;
    while (s.next(op))
        ++counts[op.addr];
    // Top-10% blocks take well over 10% of accesses.
    std::vector<int> v;
    for (const auto &[a, c] : counts)
        v.push_back(c);
    std::sort(v.rbegin(), v.rend());
    const std::size_t top = std::max<std::size_t>(1, v.size() / 10);
    long top_sum = 0, total = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        total += v[i];
        if (i < top)
            top_sum += v[i];
    }
    EXPECT_GT(top_sum * 10, total * 3); // >= 30% in the top decile
}

TEST(SyntheticSource, ColdStreamNeverRevisitsWithinASweep)
{
    // The cold cursor walks every block exactly once per lap (no reuse
    // inside a sweep) even though addresses are scattered over the
    // region's virtual span.
    SystemConfig cfg;
    StreamParams p = basicParams();
    p.sharedFraction = 0.0;
    p.ifetchFraction = 0.0;
    p.coldBytes = 1 << 20; // 16384 blocks
    p.coldFraction = 1.0;
    p.ops = 16384;
    SyntheticSource s(cfg, p, 1);
    std::set<Addr> seen;
    TraceOp op;
    while (s.next(op))
        EXPECT_TRUE(seen.insert(op.addr).second);
    EXPECT_EQ(seen.size(), 16384u);
}

TEST(RegionBase, DisjointPrefixes)
{
    EXPECT_NE(regionBase(Region::PrivateHot, 0),
              regionBase(Region::PrivateCold, 0));
    EXPECT_NE(regionBase(Region::PrivateHot, 0),
              regionBase(Region::PrivateHot, 1));
    EXPECT_NE(regionBase(Region::SharedData, 1),
              regionBase(Region::SharedData, 2));
}

} // namespace
} // namespace espnuca
