/**
 * @file
 * Statistical property checks of the Table 1 presets: each family's
 * streams must actually exhibit the characteristics the paper ascribes
 * to it (sharing degree, footprints, write intensity, imbalance).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/presets.hpp"

namespace espnuca {
namespace {

struct StreamStats
{
    std::uint64_t total = 0;
    std::uint64_t ifetch = 0;
    std::uint64_t stores = 0;
    std::uint64_t dependent = 0;
    std::set<Addr> blocks;
    std::map<std::uint64_t, std::uint64_t> byRegion; // addr>>44 -> count
};

StreamStats
sample(const SystemConfig &cfg, const StreamParams &p,
       std::uint64_t seed = 7)
{
    StreamStats s;
    SyntheticSource src(cfg, p, seed);
    TraceOp op;
    while (src.next(op)) {
        ++s.total;
        s.ifetch += op.type == AccessType::Ifetch;
        s.stores += op.type == AccessType::Store;
        s.dependent += op.dependsOnPrev;
        s.blocks.insert(op.addr & ~0x3Full);
        ++s.byRegion[op.addr >> 44];
    }
    return s;
}

constexpr std::uint64_t kSharedData =
    static_cast<std::uint64_t>(Region::SharedData);
constexpr std::uint64_t kOs = static_cast<std::uint64_t>(Region::OsData);

double
sharedDataFraction(const StreamStats &s)
{
    const auto it = s.byRegion.find(kSharedData);
    const double shared =
        it == s.byRegion.end() ? 0.0 : static_cast<double>(it->second);
    return shared / static_cast<double>(s.total);
}

class FamilyStats : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FamilyStats, TransactionalHaveHighSharingAndOsActivity)
{
    if (GetParam() != "transactional")
        GTEST_SKIP();
    SystemConfig cfg;
    for (const auto &name : transactionalWorkloads()) {
        const Workload w = makeWorkload(name, cfg, 30'000, 1);
        const StreamStats s = sample(cfg, w.cores[0]);
        EXPECT_GT(sharedDataFraction(s), 0.15) << name;
        EXPECT_GT(s.byRegion.count(kOs), 0u) << name;
        EXPECT_GT(s.ifetch, s.total / 8) << name; // big code footprint
    }
}

TEST_P(FamilyStats, MultiprogrammedHaveNoDataSharing)
{
    if (GetParam() != "multiprogrammed")
        GTEST_SKIP();
    SystemConfig cfg;
    for (const auto &name : halfRateWorkloads()) {
        const Workload w = makeWorkload(name, cfg, 30'000, 1);
        for (CoreId c = 0; c < 4; ++c)
            EXPECT_EQ(w.cores[c].sharedFraction, 0.0) << name;
    }
    // Instances of the same program share only the binary and the OS
    // image; their *data* regions are fully disjoint.
    const Workload w = makeWorkload("gcc-4", cfg, 30'000, 1);
    const StreamStats a = sample(cfg, w.cores[0]);
    const StreamStats b = sample(cfg, w.cores[1]);
    auto is_private_data = [](Addr x) {
        const auto kind = x >> 44;
        return kind == static_cast<std::uint64_t>(Region::PrivateHot) ||
               kind == static_cast<std::uint64_t>(Region::PrivateCold);
    };
    std::uint64_t data_overlap = 0, any_overlap = 0;
    for (Addr x : a.blocks) {
        if (b.blocks.count(x)) {
            ++any_overlap;
            data_overlap += is_private_data(x);
        }
    }
    EXPECT_EQ(data_overlap, 0u);
    EXPECT_LT(any_overlap, a.blocks.size() / 4); // code + OS only
}

TEST_P(FamilyStats, NpbHaveLimitedSharingAndStreams)
{
    if (GetParam() != "npb")
        GTEST_SKIP();
    SystemConfig cfg;
    for (const auto &name : npbWorkloads()) {
        const Workload w = makeWorkload(name, cfg, 30'000, 1);
        const StreamStats s = sample(cfg, w.cores[0]);
        EXPECT_LT(sharedDataFraction(s), 0.15) << name;
        EXPECT_GT(s.byRegion.count(
                      static_cast<std::uint64_t>(Region::PrivateCold)),
                  0u)
            << name; // streaming component present
    }
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyStats,
                         ::testing::Values("transactional",
                                           "multiprogrammed", "npb"));

TEST(WorkloadStats, FootprintOrderingMatchesPaperNarrative)
{
    // art/mcf carry much larger distinct footprints than gcc/gzip —
    // the driver of the paper's Figure 9 split.
    SystemConfig cfg;
    auto blocks = [&](const char *wl) {
        const Workload w = makeWorkload(wl, cfg, 40'000, 1);
        return sample(cfg, w.cores[0]).blocks.size();
    };
    const auto mcf = blocks("mcf-4");
    const auto art = blocks("art-4");
    const auto gcc = blocks("gcc-4");
    const auto gzip = blocks("gzip-4");
    EXPECT_GT(mcf, 2 * gzip);
    EXPECT_GT(art, 2 * gzip);
    EXPECT_GT(mcf, gcc);
}

TEST(WorkloadStats, WriteIntensityWithinFamilyBounds)
{
    SystemConfig cfg;
    for (const auto &name : allWorkloads()) {
        const Workload w = makeWorkload(name, cfg, 20'000, 1);
        for (const auto &p : w.cores) {
            if (p.ops == 0)
                continue;
            const StreamStats s = sample(cfg, p);
            const double writes =
                static_cast<double>(s.stores) /
                static_cast<double>(s.total);
            EXPECT_GT(writes, 0.02) << name;
            EXPECT_LT(writes, 0.45) << name;
            break; // one representative core per workload
        }
    }
}

TEST(WorkloadStats, DependenceFractionTracksPreset)
{
    SystemConfig cfg;
    const Workload w = makeWorkload("mcf-4", cfg, 40'000, 1);
    const StreamStats s = sample(cfg, w.cores[0]);
    // mcf is the pointer-chasing champion: ~50 % of loads dependent.
    const double dep_of_total =
        static_cast<double>(s.dependent) / static_cast<double>(s.total);
    EXPECT_GT(dep_of_total, 0.30);
    const Workload g = makeWorkload("gzip-4", cfg, 40'000, 1);
    const StreamStats sg = sample(cfg, g.cores[0]);
    EXPECT_LT(static_cast<double>(sg.dependent) /
                  static_cast<double>(sg.total),
              dep_of_total);
}

TEST(WorkloadStats, SharedWindowConcentratesReuse)
{
    // With the session-window model on, a core revisits recently used
    // shared blocks far more often than a pure Zipf draw would.
    SystemConfig cfg;
    StreamParams p;
    p.ops = 30'000;
    p.sharedBytes = 2 << 20;
    p.sharedFraction = 1.0;
    p.ifetchFraction = 0.0;
    p.writeFraction = 0.0;
    p.zipfTheta = 0.3;
    auto distinct = [&](std::uint64_t window_blocks) {
        StreamParams q = p;
        q.sharedWindowBlocks = window_blocks;
        q.sharedWindowFraction = window_blocks ? 0.6 : 0.0;
        return sample(cfg, q).blocks.size();
    };
    EXPECT_LT(distinct(2048), distinct(0) * 8 / 10);
}

} // namespace
} // namespace espnuca
