/**
 * @file
 * Trace record/replay tests: format round trip, comments, errors,
 * capture-through behaviour.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "workload/trace_file.hpp"
#include "workload/trace_gen.hpp"

namespace espnuca {
namespace {

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TraceFile, RoundTrip)
{
    const std::string path = tempPath("espnuca_rt.trace");
    {
        TraceRecorder rec(path);
        rec.record({3, AccessType::Load, 0xABCD40, true});
        rec.record({0, AccessType::Store, 0x40, false});
        rec.record({7, AccessType::Ifetch, 0xFFFF80, false});
        EXPECT_EQ(rec.recorded(), 3u);
    }
    FileTraceSource src(path);
    TraceOp op;
    ASSERT_TRUE(src.next(op));
    EXPECT_EQ(op.gap, 3u);
    EXPECT_EQ(op.type, AccessType::Load);
    EXPECT_EQ(op.addr, 0xABCD40u);
    EXPECT_TRUE(op.dependsOnPrev);
    ASSERT_TRUE(src.next(op));
    EXPECT_EQ(op.type, AccessType::Store);
    EXPECT_EQ(op.addr, 0x40u);
    EXPECT_FALSE(op.dependsOnPrev);
    ASSERT_TRUE(src.next(op));
    EXPECT_EQ(op.type, AccessType::Ifetch);
    EXPECT_FALSE(src.next(op));
    std::filesystem::remove(path);
}

TEST(TraceFile, CommentsAndBlankLinesSkipped)
{
    const std::string path = tempPath("espnuca_cm.trace");
    {
        std::ofstream out(path);
        out << "# header comment\n\n2 L 1000 0\n# middle\n1 S 2000 1\n";
    }
    FileTraceSource src(path);
    TraceOp op;
    ASSERT_TRUE(src.next(op));
    EXPECT_EQ(op.addr, 0x1000u);
    ASSERT_TRUE(src.next(op));
    EXPECT_EQ(op.addr, 0x2000u);
    EXPECT_TRUE(op.dependsOnPrev);
    EXPECT_FALSE(src.next(op));
    std::filesystem::remove(path);
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_DEATH({ FileTraceSource src("/nonexistent/nowhere.trace"); },
                 ".*");
}

TEST(TraceFile, MalformedLineIsFatal)
{
    const std::string path = tempPath("espnuca_bad.trace");
    {
        std::ofstream out(path);
        out << "not a trace line\n";
    }
    EXPECT_DEATH(
        {
            FileTraceSource src(path);
            TraceOp op;
            src.next(op);
        },
        ".*");
    std::filesystem::remove(path);
}

TEST(TraceFile, RecordingSourcePassesThrough)
{
    const std::string path = tempPath("espnuca_cap.trace");
    SystemConfig cfg;
    StreamParams p;
    p.ops = 50;
    p.hotBytes = 64 * 1024;
    {
        RecordingSource rec(
            std::make_unique<SyntheticSource>(cfg, p, 9), path);
        TraceOp op;
        int n = 0;
        while (rec.next(op))
            ++n;
        EXPECT_EQ(n, 50);
    }
    // The captured file replays the identical stream.
    FileTraceSource replay(path);
    SyntheticSource fresh(cfg, p, 9);
    TraceOp a, b;
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(replay.next(a));
        ASSERT_TRUE(fresh.next(b));
        EXPECT_EQ(a.addr, b.addr) << i;
        EXPECT_EQ(a.type, b.type) << i;
        EXPECT_EQ(a.gap, b.gap) << i;
        EXPECT_EQ(a.dependsOnPrev, b.dependsOnPrev) << i;
    }
    std::filesystem::remove(path);
}

} // namespace
} // namespace espnuca
