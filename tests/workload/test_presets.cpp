/**
 * @file
 * Workload preset structure tests: Table 1 coverage, family shapes,
 * perturbation.
 */

#include <gtest/gtest.h>

#include "workload/presets.hpp"

namespace espnuca {
namespace {

TEST(Presets, TwentyTwoWorkloads)
{
    EXPECT_EQ(allWorkloads().size(), 22u);
    EXPECT_EQ(transactionalWorkloads().size(), 4u);
    EXPECT_EQ(halfRateWorkloads().size(), 5u);
    EXPECT_EQ(hybridWorkloads().size(), 5u);
    EXPECT_EQ(npbWorkloads().size(), 8u);
}

TEST(Presets, EveryWorkloadBuilds)
{
    SystemConfig cfg;
    for (const auto &name : allWorkloads()) {
        const Workload w = makeWorkload(name, cfg, 1000, 1);
        EXPECT_EQ(w.name, name);
        EXPECT_EQ(w.cores.size(), cfg.numCores);
        std::uint64_t active = 0;
        for (const auto &p : w.cores)
            active += p.ops > 0;
        EXPECT_GE(active, 4u) << name;
    }
}

TEST(Presets, TransactionalAllCoresShareOneApp)
{
    SystemConfig cfg;
    const Workload w = makeWorkload("oltp", cfg, 1000, 1);
    for (const auto &p : w.cores) {
        EXPECT_GT(p.ops, 0u);
        EXPECT_GT(p.sharedFraction, 0.2);
        EXPECT_EQ(p.appId, 1u);
        EXPECT_GT(p.osFraction, 0.0);
    }
}

TEST(Presets, HalfRateRunsFourPlusServices)
{
    SystemConfig cfg;
    const Workload w = makeWorkload("art-4", cfg, 1000, 1);
    for (CoreId c = 0; c < 4; ++c) {
        EXPECT_GT(w.cores[c].ops, 0u) << c;
        EXPECT_EQ(w.cores[c].sharedFraction, 0.0) << c;
    }
    EXPECT_GT(w.cores[4].ops, 0u);
    EXPECT_LT(w.cores[4].ops, w.cores[0].ops);
    EXPECT_EQ(w.cores[5].ops, 0u);
    EXPECT_EQ(w.cores[6].ops, 0u);
    EXPECT_EQ(w.cores[7].ops, 0u);
}

TEST(Presets, HybridSplitsTwoApps)
{
    SystemConfig cfg;
    const Workload w = makeWorkload("mcf-gzip", cfg, 1000, 1);
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_EQ(w.cores[c].appId, 1u);
    for (CoreId c = 4; c < 8; ++c)
        EXPECT_EQ(w.cores[c].appId, 2u);
    // mcf's footprint dwarfs gzip's.
    EXPECT_GT(w.cores[0].hotBytes, w.cores[4].hotBytes * 3);
}

TEST(Presets, NpbHasLimitedSharing)
{
    SystemConfig cfg;
    const Workload w = makeWorkload("CG", cfg, 1000, 1);
    for (const auto &p : w.cores) {
        EXPECT_GT(p.ops, 0u);
        EXPECT_LE(p.sharedFraction, 0.15);
        EXPECT_GT(p.coldBytes, 0u); // streaming component
    }
}

TEST(Presets, SeedsPerturbParameters)
{
    SystemConfig cfg;
    const Workload a = makeWorkload("apache", cfg, 10000, 1);
    const Workload b = makeWorkload("apache", cfg, 10000, 2);
    bool differs = false;
    for (CoreId c = 0; c < cfg.numCores; ++c)
        differs |= a.cores[c].ops != b.cores[c].ops ||
                   a.cores[c].hotBytes != b.cores[c].hotBytes;
    EXPECT_TRUE(differs);
}

TEST(Presets, SameSeedReproduces)
{
    SystemConfig cfg;
    const Workload a = makeWorkload("apache", cfg, 10000, 5);
    const Workload b = makeWorkload("apache", cfg, 10000, 5);
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        EXPECT_EQ(a.cores[c].ops, b.cores[c].ops);
        EXPECT_EQ(a.cores[c].hotBytes, b.cores[c].hotBytes);
    }
}

TEST(Presets, UnknownNameFatal)
{
    SystemConfig cfg;
    EXPECT_DEATH(
        { makeWorkload("not-a-workload", cfg, 100, 1); }, ".*");
}

} // namespace
} // namespace espnuca
