#!/usr/bin/env bash
# Performance baseline: event-kernel microbenchmarks plus one
# end-to-end figure bench, distilled into BENCH_core.json so perf
# regressions show up in review diffs.
#
#   tools/bench_perf.sh [output.json]
#
# Runs (Release build):
#   - bench/micro_components  (google-benchmark, JSON format): the
#     event-kernel pair (timing wheel vs the retired heap kernel) and
#     the MSHR-pattern hash-map pair (FlatMap vs std::unordered_map),
#   - bench/fig07_onchip_offchip --json results/fig07_onchip_offchip.json
#     as the end-to-end smoke (wall time recorded),
#   - the event-kernel micro again from an -DESPNUCA_OBS=OFF build: the
#     disabled observability layer must bench within noise of the
#     compiled-out one ("obs" section, overhead_pct),
#   - bench/micro_protocol (full coherence-engine transactions on the
#     S-NUCA and ESP-NUCA substrates) from the Release build (FSM audit
#     compiled out, must stay within +-2 % of the pre-refactor numbers)
#     and from a -DESPNUCA_AUDIT=ON Release build ("protocol" section;
#     audit_overhead_pct records what compiling the audit in costs),
#   - bench/micro_protocol --ratio --stages: ESP-vs-S-NUCA throughput
#     ratio and the prof.*-based ESP hot-path stage breakdown
#     (probe/replace/ema/helping), merged into the "protocol" section,
#   - the sharded sweep engine: a small fig07 grid as two sequential
#     shards + espnuca-merge (byte-compared against the unsharded
#     document) with the sweep wall-clock recorded, and a cold-vs-warm
#     espnuca-sim checkpoint pair measuring the warmup fast-forward
#     speedup ("sweep" section; the warm restore must be >= 2x).
#
# Perf guard: if the previous BENCH_core.json exists, the new document
# is diffed against it with `espnuca-report --check --threshold 15
# --only protocol.esp_nuca` and the script fails when ESP-NUCA ns/tx
# regresses beyond the threshold. Export ESPNUCA_SKIP_PERF_GUARD=1 to
# accept an intentional regression.
#
# Output schema (BENCH_core.json):
#   { "event_kernel": { "wheel": {events_per_sec, ns_per_event},
#                       "heap_baseline": {...}, "speedup" },
#     "map_churn":    { "flat_map": {...}, "unordered_baseline": {...},
#                       "speedup" },
#     "fig07": { "wall_seconds", "json_path" },
#     "obs": { "obs_on": {...}, "obs_off": {...}, "overhead_pct" },
#     "protocol": { "snuca": {...}, "esp_nuca": {...},
#                   "snuca_audit_on": {...}, "audit_overhead_pct" },
#     "sweep": { "two_shard_fig07_wall_seconds",
#                "warm_restore": { "cold_seconds", "warm_seconds",
#                                  "speedup" } } }
#
# Environment: ESPNUCA_OPS / ESPNUCA_RUNS / ESPNUCA_JOBS thread through
# to fig07 as in every figure bench.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_core.json}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build-release -j --target micro_components \
    micro_protocol fig07_onchip_offchip > /dev/null

echo "== bench_perf: micro_components (event kernel + maps) =="
MICRO_JSON=$(mktemp)
./build-release/bench/micro_components \
    --benchmark_filter='EventKernel|MapChurn' \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "$MICRO_JSON"

echo "== bench_perf: event kernel with ESPNUCA_OBS=OFF =="
cmake -B build-obsoff -S . -DCMAKE_BUILD_TYPE=Release \
    -DESPNUCA_OBS=OFF > /dev/null
cmake --build build-obsoff -j --target micro_components > /dev/null
OBSOFF_JSON=$(mktemp)
./build-obsoff/bench/micro_components \
    --benchmark_filter='EventKernelWheel' \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "$OBSOFF_JSON"

echo "== bench_perf: micro_protocol (coherence engine, audit off) =="
PROTO_JSON=$(mktemp)
./build-release/bench/micro_protocol \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "$PROTO_JSON"

echo "== bench_perf: micro_protocol with ESPNUCA_AUDIT=ON =="
cmake -B build-auditon -S . -DCMAKE_BUILD_TYPE=Release \
    -DESPNUCA_AUDIT=ON > /dev/null
cmake --build build-auditon -j --target micro_protocol > /dev/null
AUDITON_JSON=$(mktemp)
./build-auditon/bench/micro_protocol \
    --benchmark_filter='Snuca' \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "$AUDITON_JSON"

echo "== bench_perf: micro_protocol --ratio --stages =="
BREAKDOWN_JSON=$(mktemp)
./build-release/bench/micro_protocol --ratio --stages \
    --breakdown-json "$BREAKDOWN_JSON"

echo "== bench_perf: fig07_onchip_offchip --json =="
mkdir -p results
FIG07_JSON=results/fig07_onchip_offchip.json
FIG07_START=$(date +%s.%N)
./build-release/bench/fig07_onchip_offchip --json "$FIG07_JSON" \
    > /dev/null
FIG07_END=$(date +%s.%N)

echo "== bench_perf: sharded sweep (2 shards + merge, byte compare) =="
cmake --build build-release -j --target espnuca-sim espnuca-merge \
    espnuca-report > /dev/null
SWEEP_DIR=$(mktemp -d)
sweep_fig07() {
    env ESPNUCA_OPS=8000 ESPNUCA_RUNS=2 ESPNUCA_JOBS=2 \
        ./build-release/bench/fig07_onchip_offchip "$@" > /dev/null
}
SWEEP_START=$(date +%s.%N)
sweep_fig07 --shard 0/2 --results-dir "$SWEEP_DIR/points"
sweep_fig07 --shard 1/2 --results-dir "$SWEEP_DIR/points"
./build-release/tools/espnuca-merge --results-dir "$SWEEP_DIR/points" \
    --out "$SWEEP_DIR/merged.json" > /dev/null
SWEEP_END=$(date +%s.%N)
sweep_fig07 --json "$SWEEP_DIR/unsharded.json"
cmp "$SWEEP_DIR/unsharded.json" "$SWEEP_DIR/merged.json"

echo "== bench_perf: warm-restore fast-forward (cold vs restored) =="
CKPT_DIR=$(mktemp -d)
warm_sim() {
    ./build-release/tools/espnuca-sim --arch esp-nuca \
        --workload apache --ops 200000 --warmup 0.8 \
        --checkpoint "$CKPT_DIR" --json
}
COLD_START=$(date +%s.%N)
warm_sim > "$CKPT_DIR/cold.json"
COLD_END=$(date +%s.%N)
warm_sim > "$CKPT_DIR/warm.json"
WARM_END=$(date +%s.%N)
cmp "$CKPT_DIR/cold.json" "$CKPT_DIR/warm.json"

# The new document lands in a temp file first: the regression guard
# below diffs it against the committed baseline before it replaces it.
NEW_JSON=$(mktemp)
python3 - "$MICRO_JSON" "$NEW_JSON" "$FIG07_JSON" \
    "$FIG07_START" "$FIG07_END" "$OBSOFF_JSON" \
    "$PROTO_JSON" "$AUDITON_JSON" "$BREAKDOWN_JSON" \
    "$SWEEP_START" "$SWEEP_END" "$COLD_START" "$COLD_END" \
    "$WARM_END" <<'PY'
import json, sys

(micro_path, out_path, fig07_path, t0, t1, obsoff_path,
 proto_path, auditon_path, breakdown_path,
 sweep_t0, sweep_t1, cold_t0, cold_t1, warm_t1) = sys.argv[1:15]
with open(micro_path) as f:
    micro = json.load(f)
with open(obsoff_path) as f:
    obsoff = json.load(f)
with open(proto_path) as f:
    proto = json.load(f)
with open(auditon_path) as f:
    auditon = json.load(f)
with open(breakdown_path) as f:
    breakdown = json.load(f)

def mean_metrics(name, doc=None):
    for b in (doc or micro)["benchmarks"]:
        if b["name"] == f"{name}_mean":
            eps = b["items_per_second"]
            return {"events_per_sec": round(eps),
                    "ns_per_event": round(1e9 / eps, 2)}
    raise SystemExit(f"missing benchmark aggregate: {name}_mean")

def tx_metrics(name, doc):
    for b in doc["benchmarks"]:
        if b["name"] == f"{name}_mean":
            tps = b["items_per_second"]
            return {"transactions_per_sec": round(tps),
                    "ns_per_transaction": round(1e9 / tps, 2)}
    raise SystemExit(f"missing benchmark aggregate: {name}_mean")

wheel = mean_metrics("BM_EventKernelWheel")
heap = mean_metrics("BM_EventKernelHeapBaseline")
flat = mean_metrics("BM_FlatMapChurn")
umap = mean_metrics("BM_UnorderedMapChurnBaseline")
wheel_off = mean_metrics("BM_EventKernelWheel", obsoff)
proto_snuca = tx_metrics("BM_ProtocolFsmSnuca", proto)
proto_esp = tx_metrics("BM_ProtocolFsmEspNuca", proto)
proto_audit = tx_metrics("BM_ProtocolFsmSnuca", auditon)

report = {
    "event_kernel": {
        "wheel": wheel,
        "heap_baseline": heap,
        "speedup": round(wheel["events_per_sec"] /
                         heap["events_per_sec"], 2),
    },
    "map_churn": {
        "flat_map": flat,
        "unordered_baseline": umap,
        "speedup": round(flat["events_per_sec"] /
                         umap["events_per_sec"], 2),
    },
    "fig07": {
        "wall_seconds": round(float(t1) - float(t0), 2),
        "json_path": fig07_path,
    },
    # Cost of the compiled-in (but runtime-disabled) observability
    # layer on the event-kernel hot path; must stay within noise.
    "obs": {
        "obs_on": wheel,
        "obs_off": wheel_off,
        "overhead_pct": round(
            100.0 * (wheel_off["events_per_sec"] -
                     wheel["events_per_sec"]) /
            wheel_off["events_per_sec"], 2),
    },
    # Full coherence-engine transactions through the FSM (S-NUCA: the
    # minimal substrate; ESP-NUCA: the full search/helping-block stack),
    # plus the same S-NUCA run with the audit layer compiled in. The
    # Release default compiles the audit out and must bench within
    # +-2 % of the pre-FSM engine; audit_overhead_pct is the price of
    # turning the invariant checks on (debug/ASan builds pay it).
    "protocol": {
        "snuca": proto_snuca,
        "esp_nuca": proto_esp,
        "snuca_audit_on": proto_audit,
        "audit_overhead_pct": round(
            100.0 * (proto_snuca["transactions_per_sec"] -
                     proto_audit["transactions_per_sec"]) /
            proto_snuca["transactions_per_sec"], 2),
        # ESP-vs-S-NUCA throughput ratio and the prof.*-attributed ESP
        # stage costs (--ratio / --stages single-shot runs; noisier than
        # the repetition aggregates above, attribution only).
        "esp_over_snuca": breakdown.get("ratio", {}).get(
            "esp_over_snuca"),
        "esp_stages_ns_per_tx": breakdown.get("stages_ns_per_tx"),
    },
    # Sharded sweep engine: wall clock of the two-shard fig07 sweep
    # (sequential shards + merge; the merged document was byte-compared
    # against the unsharded run above), and the warmup checkpoint
    # fast-forward — a restored run must beat its cold twin by >= 2x.
    "sweep": {
        "two_shard_fig07_wall_seconds": round(
            float(sweep_t1) - float(sweep_t0), 2),
        "warm_restore": {
            "cold_seconds": round(float(cold_t1) - float(cold_t0), 2),
            "warm_seconds": round(float(warm_t1) - float(cold_t1), 2),
            "speedup": round((float(cold_t1) - float(cold_t0)) /
                             max(float(warm_t1) - float(cold_t1),
                                 1e-9), 2),
        },
    },
}

speedup = report["sweep"]["warm_restore"]["speedup"]
if speedup < 2.0:
    raise SystemExit(f"sweep guard: warm restore only {speedup:.2f}x "
                     "over cold (need >= 2x)")

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps(report, indent=2))
PY

# Regression guard: diff against the committed baseline with
# espnuca-report (missing metrics count as regressions too), scoped to
# the coherence-engine hot path. ESPNUCA_SKIP_PERF_GUARD=1 accepts an
# intentional regression; first runs have no baseline to guard against.
if [ -f "$OUT" ]; then
    if ! ./build-release/tools/espnuca-report \
        --baseline "$OUT" --new "$NEW_JSON" \
        --check --threshold 15 --only protocol.esp_nuca; then
        if [ "${ESPNUCA_SKIP_PERF_GUARD:-}" != "1" ]; then
            echo "perf guard: ESP-NUCA regressed beyond 15 % vs $OUT" \
                "(set ESPNUCA_SKIP_PERF_GUARD=1 to accept)" >&2
            rm -f "$NEW_JSON"
            exit 1
        fi
        echo "perf guard: regression accepted (ESPNUCA_SKIP_PERF_GUARD=1)"
    fi
fi
mv "$NEW_JSON" "$OUT"

rm -f "$MICRO_JSON" "$OBSOFF_JSON" "$PROTO_JSON" "$AUDITON_JSON" \
    "$BREAKDOWN_JSON"
rm -rf "$SWEEP_DIR" "$CKPT_DIR"
echo "== bench_perf: wrote $OUT =="
