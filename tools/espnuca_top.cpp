/**
 * @file
 * espnuca-top: live (and post-mortem) swarm telemetry over a sweep
 * results directory (DESIGN.md 5.13).
 *
 * Aggregates the three observability surfaces a swarm leaves behind —
 * per-worker heartbeat files (`hb-<shard>.json`), per-writer ledgers
 * (`events-*.jsonl`) and the quarantine blacklist — into one status
 * view: per shard, points done/total, throughput, retry and
 * quarantine counts, last-heartbeat age; swarm-wide, progress and an
 * ETA. Reads are best-effort and read-only: a torn heartbeat or a
 * mid-append ledger line is skipped, never fatal, so espnuca-top can
 * run against a directory a live swarm is writing.
 *
 * Usage:
 *   espnuca-top --results-dir DIR [--json]
 *               [--follow] [--interval-ms N] [--iterations N]
 *               [--perfetto FILE]
 *
 * `--json` prints one espnuca-top-v1 document and exits; the human
 * view prints a table (and with --follow, redraws every interval).
 * `--perfetto` exports the swarm timeline as Chrome trace_event JSON:
 * one track per worker, one slice per completed point (start/finish
 * wall clock from the ledger), supervisor interventions (chaos kills,
 * stall kills, quarantines) as instants on the supervisor track —
 * load imbalance and restart storms become visible at a glance.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness/json.hpp"
#include "harness/ledger.hpp"
#include "harness/supervisor.hpp"
#include "harness/sweep.hpp"

namespace {

using namespace espnuca;

struct ShardStatus
{
    std::uint32_t shard = 0;
    bool haveHeartbeat = false;
    Heartbeat hb;
    std::uint64_t finishes = 0;      //!< point-finish ledger events
    std::uint64_t skips = 0;         //!< point-skip (already valid)
    std::uint64_t redos = 0;         //!< point-redo (recompute forced)
    std::uint64_t quarantineSkips = 0;
    std::uint64_t busyMs = 0;        //!< sum of point-finish durations
    std::uint64_t ledgerLines = 0;
    std::uint64_t ledgerBad = 0; //!< CRC-failed / torn lines skipped
    std::set<std::uint64_t> terminal; //!< hashes with a terminal event
};

struct SwarmStatus
{
    std::string runId;
    std::vector<ShardStatus> shards;
    std::vector<QuarantineRecord> quarantined;
    std::uint64_t supervisorEvents = 0;
    std::uint64_t workerSpawns = 0;
    std::uint64_t workerExits = 0;
    std::uint64_t chaosKills = 0;
    std::uint64_t stallKills = 0;
    std::uint64_t heartbeatGaps = 0;
    std::uint64_t firstWallMs = 0;
    std::uint64_t lastWallMs = 0;
    bool runFinished = false;
    int runExit = 0;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::string();
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
span(SwarmStatus &s, std::uint64_t wallMs)
{
    if (wallMs == 0)
        return;
    if (s.firstWallMs == 0 || wallMs < s.firstWallMs)
        s.firstWallMs = wallMs;
    if (wallMs > s.lastWallMs)
        s.lastWallMs = wallMs;
}

void
readShardLedger(SwarmStatus &swarm, ShardStatus &s,
                const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++s.ledgerLines;
        LedgerEvent e;
        if (!parseLedgerEvent(line, e)) {
            ++s.ledgerBad;
            continue;
        }
        if (swarm.runId.empty())
            swarm.runId = e.run;
        span(swarm, e.wallMs);
        if (e.event == "point-finish") {
            ++s.finishes;
            s.busyMs += e.value;
            s.terminal.insert(e.pointHash);
        } else if (e.event == "point-skip") {
            ++s.skips;
            s.terminal.insert(e.pointHash);
        } else if (e.event == "point-redo") {
            ++s.redos;
        } else if (e.event == "point-quarantine-skip") {
            ++s.quarantineSkips;
            s.terminal.insert(e.pointHash);
        }
    }
}

void
readSupervisorLedger(SwarmStatus &swarm, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        LedgerEvent e;
        if (!parseLedgerEvent(line, e))
            continue;
        ++swarm.supervisorEvents;
        if (swarm.runId.empty())
            swarm.runId = e.run;
        span(swarm, e.wallMs);
        if (e.event == "worker-spawn")
            ++swarm.workerSpawns;
        else if (e.event == "worker-exit")
            ++swarm.workerExits;
        else if (e.event == "chaos-kill")
            ++swarm.chaosKills;
        else if (e.event == "worker-stall-kill")
            ++swarm.stallKills;
        else if (e.event == "heartbeat-gap")
            ++swarm.heartbeatGaps;
        else if (e.event == "run-finish") {
            swarm.runFinished = true;
            swarm.runExit = static_cast<int>(e.value);
        }
    }
}

SwarmStatus
collect(const std::string &dir)
{
    SwarmStatus swarm;

    // Shard population: whatever left a heartbeat or a ledger behind.
    std::set<std::uint32_t> shards;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        unsigned idx = 0;
        if (std::sscanf(name.c_str(), "hb-%u.json", &idx) == 1 ||
            std::sscanf(name.c_str(), "events-shard-%u.jsonl", &idx) ==
                1)
            shards.insert(idx);
    }

    for (const std::uint32_t idx : shards) {
        ShardStatus s;
        s.shard = idx;
        Heartbeat hb;
        if (parseHeartbeat(slurp(heartbeatPathFor(dir, idx)), hb)) {
            s.haveHeartbeat = true;
            s.hb = hb;
            span(swarm, hb.wallMs);
        }
        readShardLedger(swarm, s,
                        ledgerPathFor(dir, /*supervisor=*/false, idx));
        swarm.shards.push_back(std::move(s));
    }
    readSupervisorLedger(swarm, ledgerPathFor(dir, /*supervisor=*/true));
    try {
        swarm.quarantined = readQuarantine(dir);
    } catch (const std::exception &) {
        // A torn blacklist mid-rewrite: report zero, next refresh wins.
    }
    return swarm;
}

double
throughput(const SwarmStatus &swarm, std::uint64_t finishes)
{
    const std::uint64_t wall = swarm.lastWallMs - swarm.firstWallMs;
    if (swarm.firstWallMs == 0 || wall == 0)
        return 0.0;
    return static_cast<double>(finishes) /
           (static_cast<double>(wall) / 1000.0);
}

void
writeJson(const SwarmStatus &swarm, std::string *out)
{
    const std::uint64_t now = ledgerWallMs();
    std::uint64_t done = 0;
    std::uint64_t total = 0;
    std::uint64_t finishes = 0;
    std::uint64_t redos = 0;
    std::set<std::uint64_t> terminal;

    JsonWriter w;
    w.beginObject();
    w.field("schema", "espnuca-top-v1");
    w.field("run", swarm.runId);
    w.key("shards").beginArray();
    for (const ShardStatus &s : swarm.shards) {
        done += s.hb.done;
        total += s.hb.total;
        finishes += s.finishes;
        redos += s.redos;
        terminal.insert(s.terminal.begin(), s.terminal.end());
        w.beginObject();
        w.field("shard", static_cast<std::uint64_t>(s.shard));
        w.field("state", s.haveHeartbeat ? s.hb.state : "unknown");
        w.field("done", s.hb.done);
        w.field("total", s.hb.total);
        w.field("points_finished", s.finishes);
        w.field("points_skipped", s.skips);
        w.field("retries", s.redos);
        w.field("quarantine_skips", s.quarantineSkips);
        w.field("busy_ms", s.busyMs);
        w.field("heartbeat_age_ms",
                s.haveHeartbeat && s.hb.wallMs != 0 &&
                        now >= s.hb.wallMs
                    ? now - s.hb.wallMs
                    : 0);
        if (s.haveHeartbeat && s.hb.pointHash != 0) {
            w.field("point_hash", digestHex(s.hb.pointHash));
            w.field("arch", s.hb.arch);
            w.field("workload", s.hb.workload);
        }
        w.field("ledger_lines", s.ledgerLines);
        w.field("ledger_bad_lines", s.ledgerBad);
        w.endObject();
    }
    w.endArray();

    const double rate = throughput(swarm, finishes);
    const std::uint64_t remaining = total > done ? total - done : 0;
    w.key("totals").beginObject();
    w.field("done", done);
    w.field("total", total);
    w.field("points_terminal",
            static_cast<std::uint64_t>(terminal.size()));
    w.field("points_finished", finishes);
    w.field("retries", redos);
    w.field("quarantined",
            static_cast<std::uint64_t>(swarm.quarantined.size()));
    w.field("throughput_points_per_sec", rate);
    w.field("eta_sec",
            rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0);
    w.endObject();

    w.key("supervisor").beginObject();
    w.field("events", swarm.supervisorEvents);
    w.field("worker_spawns", swarm.workerSpawns);
    w.field("worker_exits", swarm.workerExits);
    w.field("chaos_kills", swarm.chaosKills);
    w.field("stall_kills", swarm.stallKills);
    w.field("heartbeat_gaps", swarm.heartbeatGaps);
    w.field("run_finished", swarm.runFinished);
    w.field("run_exit", static_cast<std::int64_t>(swarm.runExit));
    w.endObject();
    w.endObject();
    *out = w.str();
}

void
printHuman(const SwarmStatus &swarm)
{
    const std::uint64_t now = ledgerWallMs();
    std::printf("swarm %s  (%zu shard(s), %zu quarantined, %s)\n",
                swarm.runId.empty() ? "<no ledger>"
                                    : swarm.runId.c_str(),
                swarm.shards.size(), swarm.quarantined.size(),
                swarm.runFinished ? "finished" : "running");
    std::printf("%5s %-12s %9s %8s %7s %7s %9s  %s\n", "shard", "state",
                "done", "finished", "retry", "quar", "hb-age", "point");
    std::uint64_t done = 0;
    std::uint64_t total = 0;
    std::uint64_t finishes = 0;
    for (const ShardStatus &s : swarm.shards) {
        done += s.hb.done;
        total += s.hb.total;
        finishes += s.finishes;
        char prog[32];
        std::snprintf(prog, sizeof prog, "%llu/%llu",
                      static_cast<unsigned long long>(s.hb.done),
                      static_cast<unsigned long long>(s.hb.total));
        char age[32];
        if (s.haveHeartbeat && s.hb.wallMs != 0 && now >= s.hb.wallMs)
            std::snprintf(age, sizeof age, "%.1fs",
                          static_cast<double>(now - s.hb.wallMs) /
                              1000.0);
        else
            std::snprintf(age, sizeof age, "-");
        std::string point;
        if (s.haveHeartbeat && s.hb.pointHash != 0)
            point = s.hb.arch + "/" + s.hb.workload;
        std::printf("%5u %-12s %9s %8llu %7llu %7llu %9s  %s\n",
                    s.shard,
                    s.haveHeartbeat ? s.hb.state.c_str() : "unknown",
                    prog,
                    static_cast<unsigned long long>(s.finishes),
                    static_cast<unsigned long long>(s.redos),
                    static_cast<unsigned long long>(s.quarantineSkips),
                    age, point.c_str());
    }
    const double rate = throughput(swarm, finishes);
    const std::uint64_t remaining = total > done ? total - done : 0;
    if (rate > 0.0 && remaining > 0)
        std::printf("total %llu/%llu  %.2f points/s  eta %.0fs\n",
                    static_cast<unsigned long long>(done),
                    static_cast<unsigned long long>(total), rate,
                    static_cast<double>(remaining) / rate);
    else
        std::printf("total %llu/%llu\n",
                    static_cast<unsigned long long>(done),
                    static_cast<unsigned long long>(total));
    if (swarm.chaosKills + swarm.stallKills + swarm.heartbeatGaps > 0)
        std::printf("supervisor: %llu spawns, %llu chaos kills, "
                    "%llu stall kills, %llu heartbeat gaps\n",
                    static_cast<unsigned long long>(swarm.workerSpawns),
                    static_cast<unsigned long long>(swarm.chaosKills),
                    static_cast<unsigned long long>(swarm.stallKills),
                    static_cast<unsigned long long>(
                        swarm.heartbeatGaps));
}

/**
 * Swarm timeline as Chrome trace_event JSON: pid 1 is the supervisor
 * (instants for kills/quarantines), pid 2+i is worker shard i with one
 * "ph":"X" slice per completed point, named arch/workload, start and
 * duration from the ledger's point-start/point-finish wall clocks.
 */
bool
exportSwarmTrace(const std::string &dir, const SwarmStatus &swarm,
                 const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "espnuca-top: cannot write %s\n",
                     path.c_str());
        return false;
    }
    const std::uint64_t base = swarm.firstWallMs;
    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&os, &first]() {
        if (!first)
            os << ",\n";
        first = false;
    };
    sep();
    os << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"args\":{\"name\":\"supervisor\"}}";
    for (const ShardStatus &s : swarm.shards) {
        sep();
        os << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
           << (2 + s.shard) << ",\"args\":{\"name\":\"shard-" << s.shard
           << "\"}}";
    }

    for (const ShardStatus &s : swarm.shards) {
        std::ifstream in(
            ledgerPathFor(dir, /*supervisor=*/false, s.shard),
            std::ios::binary);
        if (!in)
            continue;
        std::map<std::uint64_t, LedgerEvent> open; //!< hash -> start
        std::string line;
        while (std::getline(in, line)) {
            LedgerEvent e;
            if (line.empty() || !parseLedgerEvent(line, e))
                continue;
            const std::uint64_t ts = e.wallMs - base;
            if (e.event == "point-start") {
                open[e.pointHash] = e;
            } else if (e.event == "point-finish") {
                const auto it = open.find(e.pointHash);
                const std::uint64_t start =
                    it != open.end() ? it->second.wallMs - base
                                     : (ts >= e.value ? ts - e.value
                                                      : 0);
                sep();
                os << "  {\"name\":\"" << e.arch << "/" << e.workload
                   << "\",\"cat\":\"point\",\"ph\":\"X\",\"ts\":"
                   << start * 1000 << ",\"dur\":"
                   << (ts - start) * 1000 << ",\"pid\":"
                   << (2 + s.shard)
                   << ",\"tid\":0,\"args\":{\"point_hash\":\""
                   << digestHex(e.pointHash) << "\",\"index\":"
                   << e.index << "}}";
                open.erase(e.pointHash);
            } else if (e.event == "point-skip" ||
                       e.event == "point-quarantine-skip" ||
                       e.event == "point-redo") {
                sep();
                os << "  {\"name\":\"" << e.event
                   << "\",\"cat\":\"point\",\"ph\":\"i\",\"ts\":"
                   << ts * 1000 << ",\"pid\":" << (2 + s.shard)
                   << ",\"tid\":0,\"s\":\"t\",\"args\":{\"point_hash\":"
                      "\""
                   << digestHex(e.pointHash) << "\"}}";
            }
        }
        // A point still open when the capture ended (live swarm or a
        // kill): degrade to an instant so it is not silently dropped.
        for (const auto &[hash, e] : open) {
            sep();
            os << "  {\"name\":\"" << e.arch << "/" << e.workload
               << " (in flight)\",\"cat\":\"point\",\"ph\":\"i\","
                  "\"ts\":"
               << (e.wallMs - base) * 1000 << ",\"pid\":"
               << (2 + s.shard)
               << ",\"tid\":0,\"s\":\"t\",\"args\":{\"point_hash\":\""
               << digestHex(hash) << "\"}}";
        }
    }

    // Supervisor interventions as instants on the supervisor track.
    {
        std::ifstream in(ledgerPathFor(dir, /*supervisor=*/true),
                         std::ios::binary);
        std::string line;
        while (in && std::getline(in, line)) {
            LedgerEvent e;
            if (line.empty() || !parseLedgerEvent(line, e))
                continue;
            if (e.event != "chaos-kill" &&
                e.event != "worker-stall-kill" &&
                e.event != "point-quarantine" &&
                e.event != "worker-spawn" && e.event != "worker-exit")
                continue;
            sep();
            os << "  {\"name\":\"" << e.event
               << "\",\"cat\":\"swarm\",\"ph\":\"i\",\"ts\":"
               << (e.wallMs - base) * 1000
               << ",\"pid\":1,\"tid\":0,\"s\":\"t\",\"args\":{"
                  "\"value\":"
               << e.value << "}}";
        }
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
    return os.good();
}

[[noreturn]] void
usage(int code)
{
    std::fprintf(stderr,
                 "usage: espnuca-top --results-dir DIR [--json]\n"
                 "                   [--follow] [--interval-ms N]\n"
                 "                   [--iterations N] "
                 "[--perfetto FILE]\n");
    std::exit(code);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir;
    std::string perfetto;
    bool json = false;
    bool follow = false;
    std::uint64_t intervalMs = 1000;
    std::uint64_t iterations = 0; //!< 0 = until interrupted (--follow)

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (a == "--results-dir")
            dir = next();
        else if (a == "--json")
            json = true;
        else if (a == "--follow")
            follow = true;
        else if (a == "--interval-ms")
            intervalMs = std::strtoull(next(), nullptr, 10);
        else if (a == "--iterations")
            iterations = std::strtoull(next(), nullptr, 10);
        else if (a == "--perfetto")
            perfetto = next();
        else if (a == "--help" || a == "-h")
            usage(0);
        else
            usage(2);
    }
    if (dir.empty())
        usage(2);
    if (!std::filesystem::is_directory(dir)) {
        std::fprintf(stderr, "espnuca-top: no such directory: %s\n",
                     dir.c_str());
        return 3;
    }

    std::uint64_t shown = 0;
    while (true) {
        const SwarmStatus swarm = collect(dir);
        if (!perfetto.empty() && !exportSwarmTrace(dir, swarm, perfetto))
            return 3;
        if (json) {
            std::string doc;
            writeJson(swarm, &doc);
            std::printf("%s\n", doc.c_str());
        } else {
            if (follow && shown > 0)
                std::printf("\033[2J\033[H");
            printHuman(swarm);
        }
        ++shown;
        if (!follow || (iterations != 0 && shown >= iterations) ||
            (follow && swarm.runFinished))
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(intervalMs));
    }
    return 0;
}
