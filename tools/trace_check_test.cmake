# Integration test: a traced, telemetry-sampled run must produce a
# Perfetto-loadable trace with at least one complete transaction span
# (correlated with a bank probe and a mesh hop) and a point JSON whose
# timeseries carries the per-bank nmax and set-class EMAs.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(
    COMMAND ${SIM} --arch esp --workload apache --ops 3000
            --warmup 0 --trace-out ${WORKDIR}/trace.json
            --metrics-interval 10000 --json
    RESULT_VARIABLE sim_result
    OUTPUT_FILE ${WORKDIR}/point.json
)
if(NOT sim_result EQUAL 0)
    message(FATAL_ERROR "traced run failed: ${sim_result}")
endif()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} ${WORKDIR}/trace.json
            ${WORKDIR}/point.json
    RESULT_VARIABLE chk_result
)
if(NOT chk_result EQUAL 0)
    message(FATAL_ERROR "trace validation failed: ${chk_result}")
endif()

# The same trace must carry the epoch-telemetry counter tracks
# (pid 5, ph=C): every series present with monotonic timestamps.
execute_process(
    COMMAND ${PYTHON} ${CHECKER} --counters ${WORKDIR}/trace.json
    RESULT_VARIABLE chk_result
)
if(NOT chk_result EQUAL 0)
    message(FATAL_ERROR "counter-track validation failed: ${chk_result}")
endif()
file(REMOVE_RECURSE ${WORKDIR})
