# Integration test for the sharded, resumable sweep engine: run a small
# fig07 grid unsharded, then as two shards into a results directory,
# re-run one shard (must resume from the existing point files without
# recomputing), merge, and byte-compare the merged document against the
# unsharded one. ESPNUCA_JOBS is pinned because the config section
# records the resolved worker count; ESPNUCA_CKPT_DIR is cleared because
# phased warmup deliberately produces different (self-consistent)
# results than the default continuous warmup.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

set(env ${CMAKE_COMMAND} -E env
    ESPNUCA_OPS=1000 ESPNUCA_RUNS=2 ESPNUCA_JOBS=2
    --unset=ESPNUCA_CKPT_DIR)

execute_process(
    COMMAND ${env} ${BENCH} --json ${WORKDIR}/unsharded.json
    RESULT_VARIABLE r
    OUTPUT_QUIET
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "unsharded run failed: ${r}")
endif()

execute_process(
    COMMAND ${env} ${BENCH} --list-points --shard 0/2
    RESULT_VARIABLE r
    OUTPUT_VARIABLE points_out
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "--list-points failed: ${r}")
endif()
string(FIND "${points_out}" "point(s)" found)
if(found EQUAL -1)
    message(FATAL_ERROR "--list-points output unexpected: ${points_out}")
endif()

foreach(shard 0 1)
    execute_process(
        COMMAND ${env} ${BENCH} --shard ${shard}/2
                --results-dir ${WORKDIR}/points
        RESULT_VARIABLE r
        OUTPUT_QUIET
    )
    if(NOT r EQUAL 0)
        message(FATAL_ERROR "shard ${shard}/2 failed: ${r}")
    endif()
endforeach()

# Relaunching a finished shard must skip every point (resume path).
execute_process(
    COMMAND ${env} ${BENCH} --shard 0/2 --results-dir ${WORKDIR}/points
    RESULT_VARIABLE r
    OUTPUT_VARIABLE resume_out
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "resumed shard failed: ${r}")
endif()
string(FIND "${resume_out}" "0 computed" found)
if(found EQUAL -1)
    message(FATAL_ERROR "resumed shard recomputed points: ${resume_out}")
endif()

execute_process(
    COMMAND ${MERGE} --results-dir ${WORKDIR}/points
            --out ${WORKDIR}/merged.json
    RESULT_VARIABLE r
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "merge failed: ${r}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/unsharded.json ${WORKDIR}/merged.json
    RESULT_VARIABLE r
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR
            "merged document differs from the unsharded run")
endif()
file(REMOVE_RECURSE ${WORKDIR})
