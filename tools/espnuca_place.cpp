/**
 * @file
 * espnuca-place: search for a core/controller placement minimizing the
 * traffic-weighted average hop distance of a workload on a k x k mesh.
 *
 * The objective is an analytic stand-in for the simulator's network
 * latency: per-core reference intensity and traffic split (private
 * bank cluster / shared banks / memory controllers) are derived from
 * the same StreamParams the trace generator runs on, and each flow is
 * charged the Manhattan hop count its placement implies. Banks stay
 * co-located with their owning core (the builders' convention), so the
 * search space is the cores' routers (distinct) and the controllers'
 * routers (distinct whenever memControllers <= meshCols, matching
 * PlacementMap::validate).
 *
 * Two engines share the objective:
 *   --mode exhaustive  enumerate every assignment (small grids only;
 *                      guarded by --max-states)
 *   --mode anneal      seeded simulated annealing from the tiled layout
 *   --mode both        run both and report disagreement
 *
 * `--out FILE` writes the winner as an espnuca-placement-v1 map that
 * `espnuca-sim --placement @FILE` accepts. `--require-improvement` /
 * `--require-agreement` turn the quality claims into exit codes so
 * ctest can assert them without a wrapper script.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "net/placement.hpp"
#include "workload/presets.hpp"

namespace {

using namespace espnuca;

struct Options
{
    SystemConfig system;
    std::string workload = "apache";
    std::string mode = "anneal";
    std::string outFile;
    std::uint64_t seed = 1;
    std::uint64_t iters = 20000;
    std::uint64_t maxStates = 2000000;
    bool requireImprovement = false;
    bool requireAgreement = false;
    double agreementEps = 1e-9;
};

/** Per-core analytic traffic model derived from the workload preset. */
struct Traffic
{
    std::vector<double> weight;     //!< reference intensity (0 = idle)
    std::vector<double> sharedFrac; //!< to the pooled shared banks
    std::vector<double> memFrac;    //!< off-chip (controller) estimate
};

Traffic
deriveTraffic(const Workload &w)
{
    Traffic t;
    t.weight.resize(w.cores.size(), 0.0);
    t.sharedFrac.resize(w.cores.size(), 0.0);
    t.memFrac.resize(w.cores.size(), 0.0);
    for (std::size_t c = 0; c < w.cores.size(); ++c) {
        const StreamParams &p = w.cores[c];
        if (p.ops == 0)
            continue;
        // References per instruction slot.
        t.weight[c] = 1.0 / (1.0 + p.gapMean);
        // Shared-region data plus shared code fetches travel to banks
        // spread over the whole chip; everything else stays in the
        // core's own cluster.
        t.sharedFrac[c] = std::min(
            0.95, p.sharedFraction + p.osFraction +
                      p.ifetchFraction * p.codeSharedFraction);
        // Off-chip estimate: streaming accesses miss by construction,
        // plus a small base miss rate for the resident sets.
        t.memFrac[c] = std::min(0.95, 0.05 + 0.5 * p.coldFraction);
    }
    return t;
}

struct Layout
{
    std::uint32_t cols = 0;
    std::uint32_t rows = 0;
    std::vector<NodeId> corePos; //!< router per core, distinct
    std::vector<NodeId> memPos;  //!< router per controller
};

std::uint32_t
hopsBetween(const Layout &l, NodeId a, NodeId b)
{
    const std::uint32_t ax = a % l.cols, ay = a / l.cols;
    const std::uint32_t bx = b % l.cols, by = b / l.cols;
    return (ax > bx ? ax - bx : bx - ax) + (ay > by ? ay - by : by - ay);
}

/**
 * Traffic-weighted average hops per reference. Banks are co-located
 * with their owners and every core owns the same number of banks, so
 * the shared-traffic term averages over core routers directly.
 */
double
cost(const Layout &l, const Traffic &t)
{
    double total = 0.0, wsum = 0.0;
    const double nCores = static_cast<double>(l.corePos.size());
    const double nMcs = static_cast<double>(l.memPos.size());
    for (std::size_t c = 0; c < l.corePos.size(); ++c) {
        if (t.weight[c] == 0.0)
            continue;
        double dShared = 0.0;
        for (NodeId n : l.corePos)
            dShared += hopsBetween(l, l.corePos[c], n);
        dShared /= nCores;
        double dMem = 0.0;
        for (NodeId n : l.memPos)
            dMem += hopsBetween(l, l.corePos[c], n);
        dMem /= nMcs;
        total += t.weight[c] *
                 (t.sharedFrac[c] * dShared + t.memFrac[c] * dMem);
        wsum += t.weight[c];
    }
    return wsum == 0.0 ? 0.0 : total / wsum;
}

Layout
fromPlacement(const PlacementMap &p)
{
    Layout l;
    l.cols = p.cols;
    l.rows = p.rows;
    l.corePos = p.coreNodes;
    l.memPos = p.memNodes;
    return l;
}

PlacementMap
toPlacement(const Layout &l, const SystemConfig &cfg)
{
    PlacementMap p;
    p.name = "custom";
    p.cols = l.cols;
    p.rows = l.rows;
    p.coreNodes = l.corePos;
    p.memNodes = l.memPos;
    p.bankNodes.resize(cfg.l2Banks);
    for (BankId b = 0; b < cfg.l2Banks; ++b)
        p.bankNodes[b] = l.corePos[b / cfg.banksPerCore()];
    return p;
}

/** Distinct-controller constraint (mirrors PlacementMap::validate). */
bool
mcsMustBeDistinct(const Layout &l)
{
    return l.memPos.size() <= l.cols;
}

// -- Exhaustive engine ---------------------------------------------------

struct Exhaustive
{
    const Traffic &traffic;
    std::uint64_t statesLeft;
    Layout best;
    double bestCost = -1.0;
    bool truncated = false;

    void
    run(Layout &l)
    {
        std::vector<char> used(l.cols * l.rows, 0);
        placeCores(l, used, 0);
    }

    void
    placeCores(Layout &l, std::vector<char> &used, std::size_t c)
    {
        if (truncated)
            return;
        if (c == l.corePos.size()) {
            std::vector<char> mused(used.size(), 0);
            placeMcs(l, mused, 0);
            return;
        }
        const NodeId nodes = static_cast<NodeId>(used.size());
        for (NodeId n = 0; n < nodes; ++n) {
            if (used[n])
                continue;
            used[n] = 1;
            l.corePos[c] = n;
            placeCores(l, used, c + 1);
            used[n] = 0;
        }
    }

    void
    placeMcs(Layout &l, std::vector<char> &mused, std::size_t m)
    {
        if (truncated)
            return;
        if (m == l.memPos.size()) {
            if (statesLeft == 0) {
                truncated = true;
                return;
            }
            --statesLeft;
            const double c = cost(l, traffic);
            if (bestCost < 0.0 || c < bestCost) {
                bestCost = c;
                best = l;
            }
            return;
        }
        const bool distinct = mcsMustBeDistinct(l);
        const NodeId nodes = static_cast<NodeId>(mused.size());
        for (NodeId n = 0; n < nodes; ++n) {
            if (distinct && mused[n])
                continue;
            mused[n] = 1;
            l.memPos[m] = n;
            placeMcs(l, mused, m + 1);
            mused[n] = 0;
        }
    }
};

// -- Annealing engine ----------------------------------------------------

Layout
anneal(const Layout &start, const Traffic &traffic, std::uint64_t iters,
       std::uint64_t seed, double *outCost)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x91aceULL);
    Layout cur = start;
    Layout best = start;
    double curCost = cost(cur, traffic);
    double bestCost = curCost;
    const double t0 = std::max(0.5 * curCost, 0.05);
    const double tEnd = 1e-4;
    const std::uint32_t nodes = cur.cols * cur.rows;
    std::vector<char> coreAt(nodes, 0);
    for (NodeId n : cur.corePos)
        coreAt[n] = 1;

    for (std::uint64_t it = 0; it < iters; ++it) {
        const double temp =
            t0 * std::pow(tEnd / t0,
                          static_cast<double>(it) /
                              static_cast<double>(iters ? iters : 1));
        Layout cand = cur;
        const std::uint64_t kind = rng.below(10);
        if (kind < 4 && cur.corePos.size() < nodes) {
            // Move one core to a free router.
            const std::size_t c = rng.below(cand.corePos.size());
            NodeId n = static_cast<NodeId>(rng.below(nodes));
            while (coreAt[n])
                n = static_cast<NodeId>(rng.below(nodes));
            cand.corePos[c] = n;
        } else if (kind < 8 && cur.corePos.size() >= 2) {
            // Swap two cores (the only core move on a full grid).
            const std::size_t a = rng.below(cand.corePos.size());
            std::size_t b = rng.below(cand.corePos.size());
            while (b == a)
                b = rng.below(cand.corePos.size());
            std::swap(cand.corePos[a], cand.corePos[b]);
        } else {
            // Move one controller.
            const std::size_t m = rng.below(cand.memPos.size());
            NodeId n = static_cast<NodeId>(rng.below(nodes));
            if (mcsMustBeDistinct(cand)) {
                auto taken = [&](NodeId v) {
                    for (std::size_t k = 0; k < cand.memPos.size(); ++k)
                        if (k != m && cand.memPos[k] == v)
                            return true;
                    return false;
                };
                while (taken(n))
                    n = static_cast<NodeId>(rng.below(nodes));
            }
            cand.memPos[m] = n;
        }
        const double candCost = cost(cand, traffic);
        const double delta = candCost - curCost;
        if (delta <= 0.0 || rng.chance(std::exp(-delta / temp))) {
            for (NodeId n : cur.corePos)
                coreAt[n] = 0;
            cur = cand;
            curCost = candCost;
            for (NodeId n : cur.corePos)
                coreAt[n] = 1;
            if (curCost < bestCost) {
                bestCost = curCost;
                best = cur;
            }
        }
    }
    *outCost = bestCost;
    return best;
}

// -- CLI -----------------------------------------------------------------

int
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: espnuca-place [options]\n"
        "  --cores N          core count (default 8)\n"
        "  --banks N          L2 bank count (default 4 per core)\n"
        "  --mem N            memory controllers (default 4)\n"
        "  --mesh CxR         mesh dimensions (default: tiled builder)\n"
        "  --workload NAME    traffic model source (default apache)\n"
        "  --mode M           exhaustive | anneal | both (default anneal)\n"
        "  --iters N          annealing iterations (default 20000)\n"
        "  --seed S           annealing seed (default 1)\n"
        "  --max-states N     exhaustive state guard (default 2000000)\n"
        "  --out FILE         write best espnuca-placement-v1 map\n"
        "  --require-improvement   exit 1 unless best < tiled baseline\n"
        "  --require-agreement     exit 1 unless engines agree (both)\n");
    return code;
}

bool
parseOptions(int argc, char **argv, Options &o)
{
    o.system.memControllers = 4;
    bool banksSet = false, meshSet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(usage(2));
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            std::exit(usage(0));
        } else if (a == "--cores") {
            o.system.numCores =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
        } else if (a == "--banks") {
            o.system.l2Banks =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
            banksSet = true;
        } else if (a == "--mem") {
            o.system.memControllers =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
        } else if (a == "--mesh") {
            const std::string v = next();
            const auto x = v.find('x');
            if (x == std::string::npos)
                return false;
            o.system.meshCols = static_cast<std::uint32_t>(
                std::strtoul(v.substr(0, x).c_str(), nullptr, 10));
            o.system.meshRows = static_cast<std::uint32_t>(
                std::strtoul(v.substr(x + 1).c_str(), nullptr, 10));
            meshSet = true;
        } else if (a == "--workload") {
            o.workload = next();
        } else if (a == "--mode") {
            o.mode = next();
        } else if (a == "--iters") {
            o.iters = std::strtoull(next(), nullptr, 10);
        } else if (a == "--seed") {
            o.seed = std::strtoull(next(), nullptr, 10);
        } else if (a == "--max-states") {
            o.maxStates = std::strtoull(next(), nullptr, 10);
        } else if (a == "--out") {
            o.outFile = next();
        } else if (a == "--require-improvement") {
            o.requireImprovement = true;
        } else if (a == "--require-agreement") {
            o.requireAgreement = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            return false;
        }
    }
    (void)meshSet;
    if (!banksSet)
        o.system.l2Banks = 4 * o.system.numCores;
    // Keep 256 KB banks so any bank count yields a power-of-two set
    // count (the scaling benches use the same convention).
    o.system.l2SizeBytes =
        static_cast<std::uint64_t>(o.system.l2Banks) * 256 * 1024;
    o.system.placement = "tiled";
    if (o.mode != "exhaustive" && o.mode != "anneal" && o.mode != "both") {
        std::fprintf(stderr, "unknown mode: %s\n", o.mode.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseOptions(argc, argv, o))
        return usage(2);
    const std::string diag = o.system.validate();
    if (!diag.empty()) {
        std::fprintf(stderr, "inconsistent system configuration: %s\n",
                     diag.c_str());
        return 2;
    }
    PlacementMap naive;
    try {
        naive = PlacementMap::forConfig(o.system);
    } catch (const PlacementError &e) {
        std::fprintf(stderr, "inconsistent system configuration: %s\n",
                     e.what());
        return 2;
    }

    const Workload w = makeWorkload(o.workload, o.system, 1000, o.seed);
    const Traffic traffic = deriveTraffic(w);
    const Layout start = fromPlacement(naive);
    const double naiveCost = cost(start, traffic);
    std::printf("mesh %ux%u cores %u banks %u mcs %u workload %s\n",
                start.cols, start.rows, o.system.numCores, o.system.l2Banks,
                o.system.memControllers, o.workload.c_str());
    std::printf("tiled-cost %.6f\n", naiveCost);

    Layout best = start;
    double bestCost = naiveCost;
    double exCost = -1.0, anCost = -1.0;

    if (o.mode == "exhaustive" || o.mode == "both") {
        Exhaustive ex{traffic, o.maxStates, {}, -1.0, false};
        Layout l = start;
        ex.run(l);
        if (ex.truncated) {
            std::fprintf(stderr,
                         "exhaustive search exceeded --max-states %llu; "
                         "use --mode anneal\n",
                         static_cast<unsigned long long>(o.maxStates));
            return 2;
        }
        exCost = ex.bestCost;
        std::printf("exhaustive-cost %.6f\n", exCost);
        if (exCost < bestCost) {
            bestCost = exCost;
            best = ex.best;
        }
    }
    if (o.mode == "anneal" || o.mode == "both") {
        double c = 0.0;
        const Layout l = anneal(start, traffic, o.iters, o.seed, &c);
        anCost = c;
        std::printf("anneal-cost %.6f (iters %llu seed %llu)\n", anCost,
                    static_cast<unsigned long long>(o.iters),
                    static_cast<unsigned long long>(o.seed));
        if (anCost < bestCost) {
            bestCost = anCost;
            best = l;
        }
    }
    std::printf("best-cost %.6f improvement %.2f%%\n", bestCost,
                naiveCost > 0.0
                    ? 100.0 * (naiveCost - bestCost) / naiveCost
                    : 0.0);

    PlacementMap result = toPlacement(best, o.system);
    try {
        result.validate(o.system);
    } catch (const PlacementError &e) {
        std::fprintf(stderr, "internal error: search produced an invalid "
                             "placement: %s\n",
                     e.what());
        return 2;
    }
    if (!o.outFile.empty()) {
        std::ofstream out(o.outFile);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", o.outFile.c_str());
            return 2;
        }
        out << result.serialize();
        std::printf("wrote %s (digest %016llx)\n", o.outFile.c_str(),
                    static_cast<unsigned long long>(result.digest()));
    }

    int rc = 0;
    if (o.requireAgreement) {
        if (exCost < 0.0 || anCost < 0.0) {
            std::fprintf(stderr, "--require-agreement needs --mode both\n");
            return 2;
        }
        if (std::fabs(exCost - anCost) > o.agreementEps) {
            std::fprintf(stderr,
                         "engines disagree: exhaustive %.9f vs anneal "
                         "%.9f\n",
                         exCost, anCost);
            rc = 1;
        }
    }
    if (o.requireImprovement && !(bestCost < naiveCost)) {
        std::fprintf(stderr,
                     "no improvement over the tiled baseline "
                     "(%.6f vs %.6f)\n",
                     bestCost, naiveCost);
        rc = 1;
    }
    return rc;
}
