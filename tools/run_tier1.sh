#!/usr/bin/env bash
# Tier-1 gate: Release build + full ctest, then a quick multithreaded
# bench under ThreadSanitizer to guard the parallel experiment harness.
#
#   tools/run_tier1.sh [--skip-tsan]
#
# Environment:
#   ESPNUCA_JOBS   worker threads for the TSan bench run (default 4)
set -euo pipefail

cd "$(dirname "$0")/.."
SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "== tier-1: Release build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "$SKIP_TSAN" == 1 ]]; then
    echo "== tier-1: TSan stage skipped =="
    exit 0
fi

echo "== tier-1: TSan quick bench (fig09, tiny ops, parallel runner) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DESPNUCA_SANITIZE=thread
cmake --build build-tsan -j --target fig09_multiprogrammed
ESPNUCA_OPS=2000 ESPNUCA_RUNS=2 ESPNUCA_JOBS="${ESPNUCA_JOBS:-4}" \
    ./build-tsan/bench/fig09_multiprogrammed > /dev/null
echo "== tier-1: OK =="
