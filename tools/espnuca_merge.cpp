/**
 * @file
 * espnuca-merge: reassemble a sharded sweep's per-point result files
 * into one bench JSON document.
 *
 *   espnuca-merge --results-dir DIR --out FILE [--bench NAME]
 *                 [--json-errors]
 *
 * Point files store the exact serialized spans of the unsharded bench
 * document (build, config, each point), so the merge never re-derives
 * a byte: it verifies every file's CRC32C, validates that every shard
 * came from the same grid and the same build, orders the points by
 * their declaration index, and re-frames the stored spans verbatim.
 * The output is byte-identical to the `--json` file an unsharded run
 * of the same bench writes — and it is written with the same durable
 * atomic tmp+rename discipline as the point files themselves.
 *
 * Points blacklisted in DIR/quarantine.json (espnuca-swarm's poison-
 * point record) are excused from the completeness check and folded
 * into a top-level `failures` array instead of refusing the merge;
 * the array is present only when non-empty, so clean sweeps keep
 * byte-identity with the unsharded document.
 *
 * Exit codes are machine-readable (MergeExit in sweep.hpp): 0 ok,
 * 2 usage, 3 I/O, 4 malformed record, 5 checksum mismatch, 6 build
 * mismatch, 7 grid mismatch/duplicate, 8 incomplete grid. With
 * --json-errors the failure cause is also reported as JSON on stdout
 * so the supervisor and CI can branch without parsing prose.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "harness/sweep.hpp"

using namespace espnuca;

namespace {

bool g_json_errors = false;

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: espnuca-merge --results-dir DIR --out FILE "
        "[--bench NAME] [--json-errors]\n"
        "  --results-dir DIR  per-point files of a sharded sweep\n"
        "  --out FILE         merged bench JSON document to write\n"
        "  --bench NAME       refuse points from any other bench\n"
        "  --json-errors      report failures as JSON on stdout\n"
        "exit codes: 0 ok, 2 usage, 3 io, 4 bad record, 5 checksum,\n"
        "            6 build mismatch, 7 grid mismatch, 8 incomplete\n");
    std::exit(code);
}

const char *
causeName(int code)
{
    switch (code) {
    case kMergeIoError: return "io-error";
    case kMergeBadRecord: return "bad-record";
    case kMergeChecksum: return "checksum-mismatch";
    case kMergeBuildMismatch: return "build-mismatch";
    case kMergeGridMismatch: return "grid-mismatch";
    case kMergeIncomplete: return "incomplete-grid";
    default: return "usage";
    }
}

/** Report one failure (prose on stderr, JSON on stdout when asked)
 *  and exit with its machine-readable code. */
[[noreturn]] void
fail(int code, const std::string &file, const std::string &message)
{
    std::fprintf(stderr, "%s%s%s\n", file.c_str(),
                 file.empty() ? "" : ": ", message.c_str());
    if (g_json_errors) {
        JsonWriter w;
        w.beginObject();
        w.field("schema", "espnuca-merge-errors-v1");
        w.field("exit", static_cast<std::uint64_t>(code));
        w.field("cause", causeName(code));
        w.key("errors").beginArray();
        w.beginObject();
        if (!file.empty())
            w.field("file", file);
        w.field("error", message);
        w.endObject();
        w.endArray();
        w.endObject();
        std::printf("%s\n", w.str().c_str());
    }
    std::exit(code);
}

/** Results-dir entries that are not point records: the supervisor's
 *  quarantine + heartbeat files live alongside them. Point files are
 *  named <16 hex digits>.json and nothing else. */
bool
isPointFileName(const std::string &stem)
{
    if (stem.size() != 16)
        return false;
    for (const char c : stem)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir;
    std::string out;
    std::string bench;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(0);
        } else if (a == "--results-dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (a.rfind("--results-dir=", 0) == 0) {
            dir = a.substr(14);
        } else if (a == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else if (a.rfind("--out=", 0) == 0) {
            out = a.substr(6);
        } else if (a == "--bench" && i + 1 < argc) {
            bench = argv[++i];
        } else if (a.rfind("--bench=", 0) == 0) {
            bench = a.substr(8);
        } else if (a == "--json-errors") {
            g_json_errors = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage(kMergeUsage);
        }
    }
    if (dir.empty() || out.empty())
        usage(kMergeUsage);

    std::vector<QuarantineRecord> quarantined;
    try {
        quarantined = readQuarantine(dir);
    } catch (const PointFileError &e) {
        fail(kMergeBadRecord, quarantinePath(dir), e.what());
    }

    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        fail(kMergeIoError, dir, "cannot read: " + ec.message());

    std::map<std::uint64_t, PointRecord> byIndex;
    std::string build;
    std::string config;
    std::uint64_t total = 0;
    std::size_t files = 0;
    for (const auto &entry : it) {
        const std::string path = entry.path().string();
        if (entry.path().extension() != ".json" ||
            !isPointFileName(entry.path().stem().string()))
            continue;
        PointRecord rec;
        try {
            rec = readPointFile(path);
        } catch (const PointFileError &e) {
            switch (e.kind()) {
            case PointFileError::Kind::OpenFailed:
                fail(kMergeIoError, path, e.what());
            case PointFileError::Kind::ChecksumMismatch:
                fail(kMergeChecksum, path, e.what());
            default:
                fail(kMergeBadRecord, path, e.what());
            }
        }
        ++files;
        if (bench.empty())
            bench = rec.bench;
        if (rec.bench != bench)
            fail(kMergeGridMismatch, path,
                 "bench \"" + rec.bench + "\" does not match \"" +
                     bench + "\"");
        if (build.empty()) {
            build = rec.build;
            config = rec.config;
            total = rec.total;
        }
        // Grid identity first: a mixed-config directory (e.g. two
        // sweeps under different --mesh/--placement layouts) is a grid
        // mismatch even though the layout digest also perturbs the
        // build span's config_digest.
        if (rec.config != config || rec.total != total)
            fail(kMergeGridMismatch, path,
                 "produced from a different grid — refusing to merge"
                 "\n  have: " +
                     config + "\n  file: " + rec.config);
        if (rec.build != build)
            fail(kMergeBuildMismatch, path,
                 "produced by a different build — refusing to merge"
                 "\n  have: " +
                     build + "\n  file: " + rec.build);
        const std::uint64_t idx = rec.index;
        if (!byIndex.emplace(idx, std::move(rec)).second)
            fail(kMergeGridMismatch, path,
                 "duplicate point index " + std::to_string(idx));
    }

    if (files == 0)
        fail(kMergeIncomplete, dir, "no point files");

    // Quarantined points are excused from completeness — they become
    // entries in the `failures` array instead. A quarantine record for
    // an index that does have a valid point file is stale (the point
    // completed on a later attempt) and is dropped.
    std::map<std::uint64_t, const QuarantineRecord *> excused;
    for (const QuarantineRecord &q : quarantined)
        if (byIndex.count(q.index) == 0)
            excused.emplace(q.index, &q);

    std::vector<std::uint64_t> missing;
    for (std::uint64_t i = 0; i < total; ++i)
        if (byIndex.count(i) == 0 && excused.count(i) == 0)
            missing.push_back(i);
    if (!missing.empty() || byIndex.size() + excused.size() != total) {
        std::string msg = "incomplete grid: " +
                          std::to_string(byIndex.size()) + " of " +
                          std::to_string(total) + " point(s)";
        if (!excused.empty())
            msg += " (" + std::to_string(excused.size()) +
                   " quarantined)";
        msg += "; missing:";
        for (std::size_t k = 0; k < missing.size() && k < 16; ++k)
            msg += " " + std::to_string(missing[k]);
        fail(kMergeIncomplete, dir, msg);
    }

    // Same frame writeBenchJson emits, with every value re-framed from
    // the stored spans — never re-serialized. The `failures` array is
    // appended only when quarantined points exist, so clean merges stay
    // byte-identical to the unsharded document.
    JsonWriter w;
    w.beginObject();
    w.field("bench", bench);
    w.key("build").raw(build);
    w.key("config").raw(config);
    w.key("points").beginArray();
    for (const auto &[idx, rec] : byIndex)
        w.raw(rec.point);
    w.endArray();
    if (!excused.empty()) {
        w.key("failures").beginArray();
        for (const auto &[idx, q] : excused) {
            w.beginObject();
            w.field("index", idx);
            w.field("point_hash", digestHex(q->hash));
            w.field("arch", q->arch);
            w.field("workload", q->workload);
            w.field("deaths", static_cast<std::uint64_t>(q->deaths));
            w.field("error", q->error);
            w.endObject();
        }
        w.endArray();
        // Roll-up for tooling that only wants the damage report. The
        // per-point spans are opaque here (re-framed verbatim), so the
        // count of points carrying crash-isolated run failures comes
        // from their serialized shape.
        std::size_t withFailedRuns = 0;
        for (const auto &[idx, rec] : byIndex)
            if (rec.point.find("\"failures\":[") != std::string::npos)
                ++withFailedRuns;
        w.key("summary").beginObject();
        w.field("points_merged",
                static_cast<std::uint64_t>(byIndex.size()));
        w.field("points_total", total);
        w.field("quarantined",
                static_cast<std::uint64_t>(excused.size()));
        w.field("points_with_failed_runs",
                static_cast<std::uint64_t>(withFailedRuns));
        w.endObject();
    }
    w.endObject();

    FileError ferr;
    if (!writeFileAtomicChecked(out, w.str() + "\n", /*durable=*/true,
                                &ferr))
        fail(kMergeIoError, out, ferr.message());
    std::printf("merged %zu point(s) of %s into %s", byIndex.size(),
                bench.c_str(), out.c_str());
    if (!excused.empty())
        std::printf(" (%zu quarantined failure(s) recorded)",
                    excused.size());
    std::printf("\n");
    return kMergeOk;
}
