/**
 * @file
 * espnuca-merge: reassemble a sharded sweep's per-point result files
 * into one bench JSON document.
 *
 *   espnuca-merge --results-dir DIR --out FILE [--bench NAME]
 *
 * Point files store the exact serialized spans of the unsharded bench
 * document (build, config, each point), so the merge never re-derives
 * a byte: it validates that every shard came from the same grid and
 * the same build, orders the points by their declaration index, and
 * re-frames the stored spans verbatim. The output is byte-identical
 * to the `--json` file an unsharded run of the same bench writes.
 *
 * Refusals (exit 1): mixed benches, mismatched build/config spans
 * (different binaries or result-affecting knobs), duplicate indices,
 * or an incomplete grid (a shard is still missing — the message lists
 * which indices).
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "harness/sweep.hpp"

using namespace espnuca;

namespace {

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: espnuca-merge --results-dir DIR --out FILE "
        "[--bench NAME]\n"
        "  --results-dir DIR  per-point files of a sharded sweep\n"
        "  --out FILE         merged bench JSON document to write\n"
        "  --bench NAME       refuse points from any other bench\n");
    std::exit(code);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir;
    std::string out;
    std::string bench;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(0);
        } else if (a == "--results-dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (a.rfind("--results-dir=", 0) == 0) {
            dir = a.substr(14);
        } else if (a == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else if (a.rfind("--out=", 0) == 0) {
            out = a.substr(6);
        } else if (a == "--bench" && i + 1 < argc) {
            bench = argv[++i];
        } else if (a.rfind("--bench=", 0) == 0) {
            bench = a.substr(8);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage(2);
        }
    }
    if (dir.empty() || out.empty())
        usage(2);

    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
        std::fprintf(stderr, "cannot read %s: %s\n", dir.c_str(),
                     ec.message().c_str());
        return 1;
    }

    std::map<std::uint64_t, PointRecord> byIndex;
    std::string build;
    std::string config;
    std::uint64_t total = 0;
    std::size_t files = 0;
    for (const auto &entry : it) {
        const std::string path = entry.path().string();
        if (entry.path().extension() != ".json")
            continue;
        std::ifstream in(path, std::ios::binary);
        std::string doc((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        PointRecord rec;
        if (!parsePointRecord(doc, rec)) {
            std::fprintf(stderr, "%s: not a point record\n",
                         path.c_str());
            return 1;
        }
        ++files;
        if (bench.empty())
            bench = rec.bench;
        if (rec.bench != bench) {
            std::fprintf(stderr,
                         "%s: bench \"%s\" does not match \"%s\"\n",
                         path.c_str(), rec.bench.c_str(),
                         bench.c_str());
            return 1;
        }
        if (build.empty()) {
            build = rec.build;
            config = rec.config;
            total = rec.total;
        }
        if (rec.build != build) {
            std::fprintf(stderr,
                         "%s: produced by a different build — refusing "
                         "to merge\n  have: %s\n  file: %s\n",
                         path.c_str(), build.c_str(),
                         rec.build.c_str());
            return 1;
        }
        if (rec.config != config || rec.total != total) {
            std::fprintf(stderr,
                         "%s: produced from a different grid — "
                         "refusing to merge\n",
                         path.c_str());
            return 1;
        }
        const std::uint64_t idx = rec.index;
        if (!byIndex.emplace(idx, std::move(rec)).second) {
            std::fprintf(stderr, "%s: duplicate point index %llu\n",
                         path.c_str(),
                         static_cast<unsigned long long>(idx));
            return 1;
        }
    }

    if (files == 0) {
        std::fprintf(stderr, "%s: no point files\n", dir.c_str());
        return 1;
    }
    if (byIndex.size() != total ||
        byIndex.rbegin()->first != total - 1) {
        std::fprintf(stderr,
                     "incomplete grid: %zu of %llu point(s); missing:",
                     byIndex.size(),
                     static_cast<unsigned long long>(total));
        std::size_t shown = 0;
        for (std::uint64_t i = 0; i < total && shown < 16; ++i)
            if (byIndex.count(i) == 0) {
                std::fprintf(stderr, " %llu",
                             static_cast<unsigned long long>(i));
                ++shown;
            }
        std::fprintf(stderr, "\n");
        return 1;
    }

    // Same frame writeBenchJson emits, with every value re-framed from
    // the stored spans — never re-serialized.
    JsonWriter w;
    w.beginObject();
    w.field("bench", bench);
    w.key("build").raw(build);
    w.key("config").raw(config);
    w.key("points").beginArray();
    for (const auto &[idx, rec] : byIndex)
        w.raw(rec.point);
    w.endArray();
    w.endObject();

    std::ofstream os(out, std::ios::binary | std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 1;
    }
    os << w.str() << '\n';
    if (!os.good()) {
        std::fprintf(stderr, "write to %s failed\n", out.c_str());
        return 1;
    }
    std::printf("merged %llu point(s) of %s into %s\n",
                static_cast<unsigned long long>(total), bench.c_str(),
                out.c_str());
    return 0;
}
