#!/usr/bin/env bash
# Static analysis over the whole tree with the repo's curated .clang-tidy
# profile (bugprone-* + performance-* + identifier naming).
#
#   tools/run_tidy.sh [--strict] [paths...]
#
# Configures a compile_commands.json build dir (build-tidy/) if needed,
# then runs clang-tidy over every first-party translation unit (or just
# the given paths). Default mode reports warnings and exits 0 so the CI
# job is informational; --strict exits non-zero on any warning for use
# as a local gate. Degrades with a clear message when clang-tidy is not
# installed (the container image does not bake it in; CI installs it).
set -euo pipefail

cd "$(dirname "$0")/.."

STRICT=0
PATHS=()
for arg in "$@"; do
    case "$arg" in
        --strict) STRICT=1 ;;
        *) PATHS+=("$arg") ;;
    esac
done

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
    for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                clang-tidy-15 clang-tidy-14; do
        if command -v "$cand" > /dev/null 2>&1; then
            TIDY="$cand"
            break
        fi
    done
fi
if [ -z "$TIDY" ]; then
    echo "run_tidy: clang-tidy not found on PATH (set CLANG_TIDY=...)." >&2
    echo "run_tidy: skipping static analysis; install clang-tidy to run it." >&2
    exit 0
fi

BUILD_DIR=build-tidy
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

if [ "${#PATHS[@]}" -eq 0 ]; then
    mapfile -t PATHS < <(find src tools bench examples -name '*.cpp' | sort)
fi

echo "run_tidy: $TIDY over ${#PATHS[@]} translation unit(s)" >&2
FAILED=0
LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT
for tu in "${PATHS[@]}"; do
    if ! "$TIDY" -p "$BUILD_DIR" --quiet "$tu" >> "$LOG" 2> /dev/null; then
        FAILED=1
    fi
done
cat "$LOG"

WARNINGS=$(grep -c 'warning:' "$LOG" || true)
echo "run_tidy: $WARNINGS warning(s)" >&2
if [ "$STRICT" -eq 1 ] && { [ "$WARNINGS" -gt 0 ] || [ "$FAILED" -ne 0 ]; }; then
    exit 1
fi
if [ "$FAILED" -ne 0 ]; then
    echo "run_tidy: clang-tidy reported errors on some TUs (see above)" >&2
    exit 1
fi
exit 0
