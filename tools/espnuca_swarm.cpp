/**
 * @file
 * espnuca-swarm: crash-safe sweep supervisor (DESIGN.md 5.12).
 *
 *   espnuca-swarm --results-dir DIR --shards N [options] -- worker [args]
 *
 * Fork/execs one worker process per shard — typically a figure bench
 * or espnuca-sim invocation — appending `--shard i/N --results-dir DIR
 * --heartbeat DIR/hb-i.json` to the given command line, and keeps the
 * sweep alive through arbitrary worker death: stalled workers (no
 * heartbeat change within the timeout) are SIGKILLed, dead workers are
 * restarted with exponential backoff and resume from the per-point
 * results directory, and a point that keeps killing its worker is
 * quarantined into DIR/quarantine.json after N organic deaths so the
 * rest of the grid still completes. espnuca-merge folds quarantined
 * points into the merged document's `failures` array.
 *
 *   --chaos RATE        randomly SIGKILL workers (expected kills/sec);
 *                       the crash-safety acceptance mode — induced
 *                       kills are never charged against a point
 *   --chaos-seed N      make a chaos run reproducible
 *   --stall-timeout MS  heartbeat silence before a worker is stalled
 *   --poll MS           supervision poll interval
 *   --quarantine-after N  organic deaths before a point is blacklisted
 *   --max-restarts N    per-shard restart budget before giving up
 *
 * Exit status: 0 when every shard completed (quarantined points are
 * reported, not fatal), 1 when any shard exhausted its restart budget,
 * 2 on CLI misuse.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/supervisor.hpp"

using namespace espnuca;

namespace {

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: espnuca-swarm --results-dir DIR --shards N [options] "
        "-- worker [args...]\n"
        "  --results-dir DIR     per-point files, heartbeats, "
        "quarantine\n"
        "  --shards N            worker processes / grid partitions\n"
        "  --chaos RATE          randomly SIGKILL workers "
        "(expected kills/sec)\n"
        "  --chaos-seed N        seed for the chaos schedule\n"
        "  --stall-timeout MS    heartbeat silence => SIGKILL "
        "(default 120000)\n"
        "  --poll MS             supervision poll interval "
        "(default 25)\n"
        "  --quarantine-after N  organic deaths before a point is "
        "blacklisted (default 3)\n"
        "  --max-restarts N      per-shard restart budget "
        "(default 50)\n"
        "  --backoff-ms N        restart backoff base (default 20)\n"
        "  --backoff-cap-ms N    restart backoff ceiling "
        "(default 2000)\n"
        "  --quiet               suppress per-event progress lines\n");
    std::exit(code);
}

std::uint64_t
parseU64(const char *s)
{
    return std::strtoull(s, nullptr, 10);
}

} // namespace

int
main(int argc, char **argv)
{
    SupervisorOptions opts;
    int i = 1;
    for (; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage(0);
        } else if (a == "--results-dir") {
            opts.resultsDir = next();
        } else if (a == "--shards") {
            opts.shards = static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--chaos") {
            opts.chaosKillRate = std::atof(next());
        } else if (a == "--chaos-seed") {
            opts.chaosSeed = parseU64(next());
        } else if (a == "--stall-timeout") {
            opts.stallTimeoutMs = parseU64(next());
        } else if (a == "--poll") {
            opts.pollMs = parseU64(next());
        } else if (a == "--quarantine-after") {
            opts.quarantineAfter =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--max-restarts") {
            opts.maxRestarts =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--backoff-ms") {
            opts.backoffBaseMs = parseU64(next());
        } else if (a == "--backoff-cap-ms") {
            opts.backoffCapMs = parseU64(next());
        } else if (a == "--quiet") {
            opts.verbose = false;
        } else if (a == "--") {
            ++i;
            break;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage(2);
        }
    }
    for (; i < argc; ++i)
        opts.workerCmd.push_back(argv[i]);

    if (opts.resultsDir.empty() || opts.workerCmd.empty() ||
        opts.shards == 0) {
        std::fprintf(stderr, "--results-dir, --shards and a worker "
                             "command are required\n");
        usage(2);
    }
    if (opts.pollMs == 0)
        opts.pollMs = 1;
    if (opts.quarantineAfter == 0)
        opts.quarantineAfter = 1;

    std::error_code ec;
    std::filesystem::create_directories(opts.resultsDir, ec);
    if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n",
                     opts.resultsDir.c_str(), ec.message().c_str());
        return 1;
    }

    Supervisor sup(opts);
    const int rc = sup.run();

    std::printf("[swarm] %zu worker death(s), %zu point(s) "
                "quarantined, exit %d\n",
                sup.failures().size(), sup.quarantine().size(), rc);
    for (const QuarantineRecord &q : sup.quarantine())
        std::printf("[swarm] quarantined: %s %s/%s (%u deaths): %s\n",
                    digestHex(q.hash).c_str(), q.arch.c_str(),
                    q.workload.c_str(), q.deaths, q.error.c_str());
    return rc;
}
