/**
 * @file
 * espnuca-report: cross-run regression report over two bench JSON
 * documents (DESIGN.md 5.13).
 *
 * Both documents (typically BENCH_core.json snapshots, but any JSON
 * works) are flattened to dotted numeric paths and diffed metric by
 * metric. Each metric's direction is inferred from its name — a
 * throughput-shaped metric ("*_per_sec", "*speedup*") regresses when
 * it drops, a latency-shaped one ("ns_per_*", "*_seconds",
 * "*overhead*") when it rises, anything else is flagged on movement in
 * either direction — and a change beyond the noise threshold makes it
 * a regression.
 *
 * Usage:
 *   espnuca-report --baseline OLD.json --new NEW.json
 *                  [--threshold PCT]   per-metric noise gate (def 15)
 *                  [--only PREFIX]     restrict to paths under PREFIX
 *                  [--json]            machine-readable report
 *                  [--check]           exit 1 on any regression
 *
 * Exit codes: 0 ok (or regressions found without --check), 1 at least
 * one regression with --check, 2 usage, 3 unreadable/unparsable input.
 * CI's bench-smoke lane runs `--check --only protocol.esp_nuca` as the
 * perf guard; ESPNUCA_SKIP_PERF_GUARD=1 is honoured by the caller, not
 * here — this tool always tells the truth.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "harness/json.hpp"
#include "harness/json_parse.hpp"

namespace {

using espnuca::JsonValue;

enum class Direction
{
    HigherBetter,
    LowerBetter,
    TwoSided,
};

/** Infer which way a metric is allowed to move from its name. */
Direction
directionOf(const std::string &path)
{
    auto has = [&path](const char *needle) {
        return path.find(needle) != std::string::npos;
    };
    if (has("per_sec") || has("speedup") || has("ipc") || has("hits"))
        return Direction::HigherBetter;
    if (has("ns_per") || has("_seconds") || has("overhead") ||
        has("wall") || has("latency") || has("wait"))
        return Direction::LowerBetter;
    return Direction::TwoSided;
}

const char *
toString(Direction d)
{
    switch (d) {
    case Direction::HigherBetter: return "higher-better";
    case Direction::LowerBetter: return "lower-better";
    default: return "two-sided";
    }
}

struct MetricDiff
{
    std::string path;
    double baseline = 0.0;
    double current = 0.0;
    double deltaPct = 0.0; //!< signed change relative to baseline
    Direction direction = Direction::TwoSided;
    bool regression = false;
    bool improvement = false;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: espnuca-report --baseline OLD.json --new NEW.json\n"
        "                      [--threshold PCT] [--only PREFIX]\n"
        "                      [--json] [--check]\n");
    std::exit(code);
}

bool
loadJson(const std::string &path, JsonValue &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "espnuca-report: cannot read %s\n",
                     path.c_str());
        return false;
    }
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    std::string err;
    if (!espnuca::jsonParse(text, out, &err)) {
        std::fprintf(stderr, "espnuca-report: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baselinePath;
    std::string newPath;
    std::string only;
    double threshold = 15.0;
    bool json = false;
    bool check = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (a == "--baseline")
            baselinePath = next();
        else if (a == "--new")
            newPath = next();
        else if (a == "--threshold")
            threshold = std::atof(next());
        else if (a == "--only")
            only = next();
        else if (a == "--json")
            json = true;
        else if (a == "--check")
            check = true;
        else if (a == "--help" || a == "-h")
            usage(0);
        else
            usage(2);
    }
    if (baselinePath.empty() || newPath.empty() || threshold < 0.0)
        usage(2);

    JsonValue baseDoc;
    JsonValue newDoc;
    if (!loadJson(baselinePath, baseDoc) || !loadJson(newPath, newDoc))
        return 3;

    std::map<std::string, double> base;
    std::map<std::string, double> fresh;
    espnuca::jsonFlattenNumbers(baseDoc, "", base);
    espnuca::jsonFlattenNumbers(newDoc, "", fresh);

    auto selected = [&only](const std::string &path) {
        return only.empty() || path.compare(0, only.size(), only) == 0;
    };

    std::vector<MetricDiff> diffs;
    std::vector<std::string> missing; //!< in baseline, gone in new
    std::vector<std::string> added;   //!< new metrics (informational)
    for (const auto &[path, oldV] : base) {
        if (!selected(path))
            continue;
        const auto it = fresh.find(path);
        if (it == fresh.end()) {
            missing.push_back(path);
            continue;
        }
        MetricDiff d;
        d.path = path;
        d.baseline = oldV;
        d.current = it->second;
        d.direction = directionOf(path);
        d.deltaPct = oldV != 0.0
            ? 100.0 * (d.current - oldV) / std::fabs(oldV)
            : (d.current == 0.0 ? 0.0 : 100.0);
        const bool beyond = std::fabs(d.deltaPct) > threshold;
        if (beyond) {
            const bool worse =
                d.direction == Direction::TwoSided ||
                (d.direction == Direction::HigherBetter &&
                 d.deltaPct < 0.0) ||
                (d.direction == Direction::LowerBetter &&
                 d.deltaPct > 0.0);
            d.regression = worse;
            d.improvement = !worse;
        }
        diffs.push_back(d);
    }
    for (const auto &[path, v] : fresh) {
        (void)v;
        if (selected(path) && base.find(path) == base.end())
            added.push_back(path);
    }

    std::size_t regressions = 0;
    std::size_t improvements = 0;
    for (const MetricDiff &d : diffs) {
        regressions += d.regression ? 1 : 0;
        improvements += d.improvement ? 1 : 0;
    }
    // A metric that vanished is a regression too: a guard that can be
    // silenced by deleting the metric it guards is no guard.
    regressions += missing.size();

    if (json) {
        espnuca::JsonWriter w;
        w.beginObject();
        w.field("schema", "espnuca-report-v1");
        w.field("baseline", baselinePath);
        w.field("new", newPath);
        w.field("threshold_pct", threshold);
        w.field("regressions", static_cast<std::uint64_t>(regressions));
        w.field("improvements",
                static_cast<std::uint64_t>(improvements));
        w.key("metrics").beginArray();
        for (const MetricDiff &d : diffs) {
            w.beginObject();
            w.field("path", d.path);
            w.field("baseline", d.baseline);
            w.field("new", d.current);
            w.field("delta_pct", d.deltaPct);
            w.field("direction", toString(d.direction));
            w.field("regression", d.regression);
            w.field("improvement", d.improvement);
            w.endObject();
        }
        w.endArray();
        w.key("missing").beginArray();
        for (const std::string &m : missing)
            w.value(m);
        w.endArray();
        w.key("added").beginArray();
        for (const std::string &m : added)
            w.value(m);
        w.endArray();
        w.endObject();
        std::printf("%s\n", w.str().c_str());
    } else {
        std::printf("%-44s %14s %14s %9s\n", "metric", "baseline", "new",
                    "delta");
        for (const MetricDiff &d : diffs) {
            const char *mark = d.regression ? " REGRESSION"
                : d.improvement              ? " improvement"
                                             : "";
            std::printf("%-44s %14.4g %14.4g %+8.1f%%%s\n",
                        d.path.c_str(), d.baseline, d.current,
                        d.deltaPct, mark);
        }
        for (const std::string &m : missing)
            std::printf("%-44s %14s %14s %9s MISSING\n", m.c_str(), "-",
                        "-", "-");
        for (const std::string &m : added)
            std::printf("%-44s %14s %14s %9s added\n", m.c_str(), "-",
                        "-", "-");
        std::printf("%zu metric(s), %zu regression(s), "
                    "%zu improvement(s), threshold %.1f%%\n",
                    diffs.size(), regressions, improvements, threshold);
    }

    return check && regressions > 0 ? 1 : 0;
}
