/**
 * @file
 * espnuca-sim: command-line front end to the simulator.
 *
 *   espnuca-sim --arch esp-nuca --workload apache --ops 100000
 *   espnuca-sim --arch shared --workload CG --runs 3 --json
 *   espnuca-sim --list-archs
 *   espnuca-sim --list-workloads
 *   espnuca-sim --arch esp-nuca --workload oltp --record-trace /tmp/t
 *   espnuca-sim --arch private --replay-trace /tmp/t --cores 8
 *
 * Overridable system parameters (Table 2 defaults otherwise):
 *   --l2-mb N  --banks N  --ways N  --mem-latency N  --cores N
 *   --window N  --mshrs N  --d N (monitor degradation shift)
 *   --mesh CxR  --placement paper-4x3|tiled|@FILE (see net/placement.hpp)
 * Run control:
 *   --ops N  --seed N  --runs N  --jobs N  --warmup F  --json  --csv
 * Robustness:
 *   --fault-plan SPEC    inject faults (see src/fault/fault_plan.hpp)
 *   --watchdog N         fail after N cycles without forward progress
 *   --max-cycles N       absolute simulated-cycle ceiling
 *   --retries N          attempts per run before reporting a failure
 * Observability (see src/obs/):
 *   --trace-out FILE     Chrome/Perfetto transaction trace (run 0)
 *   --trace-filter W     restrict the trace: all | tx | bank | core
 *   --metrics-interval N sample epoch telemetry every N cycles
 *   --prof               wall-clock self-profiling (prof.* section)
 *
 * Options also accept the --opt=value spelling.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "harness/system.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_buffer.hpp"
#include "workload/trace_file.hpp"

using namespace espnuca;

namespace {

struct Options
{
    std::string arch = "esp-nuca";
    std::string workload = "apache";
    std::uint64_t ops = 100'000;
    std::uint64_t seed = 1;
    std::uint32_t runs = 1;
    std::uint32_t jobs = 0; //!< 0 = ESPNUCA_JOBS / hardware default
    double warmup = 0.5;
    bool json = false;
    bool csv = false;
    bool stats = false;
    std::string recordTrace;
    std::string replayTrace;
    std::string faultPlan;
    std::uint32_t retries = 1; //!< attempts per run
    std::string checkpointDir; //!< warmup snapshot cache ("" = legacy)
    bool listPoints = false;   //!< print run identities, no simulation
    bool haveShard = false;
    ShardSpec shard;           //!< own only runs hashing into this shard
    std::string heartbeatPath; //!< supervised liveness file ("" = none)
    std::string traceOut;      //!< Perfetto trace path ("" = untraced)
    std::uint8_t traceMask = obs::kCatAll;
    Cycle metricsInterval = 0; //!< 0 = no epoch telemetry
    bool prof = false;
    SystemConfig system;
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: espnuca-sim [options]\n"
        "  --arch NAME          architecture (see --list-archs)\n"
        "  --workload NAME      Table 1 preset (see --list-workloads)\n"
        "  --ops N              memory references per core\n"
        "  --seed N             base seed\n"
        "  --runs N             seeded repetitions (reports each run)\n"
        "  --jobs N             worker threads for multi-run mode\n"
        "                       (default ESPNUCA_JOBS or all cores)\n"
        "  --warmup F           warmup fraction before stats [0,1)\n"
        "  --json | --csv       machine-readable output\n"
        "  --stats              dump per-component statistics\n"
        "  --record-trace DIR   capture the generated streams to DIR\n"
        "  --replay-trace DIR   replay core<N>.trace files from DIR\n"
        "  --fault-plan SPEC    inject faults, e.g.\n"
        "                       'bank=3;ways=*:0x3;link=0:e:0:5000:4'\n"
        "  --watchdog N         fail after N cycles without progress\n"
        "  --max-cycles N       absolute simulated-cycle ceiling\n"
        "  --retries N          attempts per run before failing it\n"
        "  --checkpoint DIR     cache warmup snapshots under DIR and\n"
        "                       fast-forward runs that hit the cache\n"
        "                       (phased warmup mode)\n"
        "  --shard i/N          execute only the seeded runs whose\n"
        "                       stable hash lands in shard i of N\n"
        "  --list-points        print every run's point hash, shard\n"
        "                       owner and identity; simulate nothing\n"
        "  --heartbeat FILE     rewrite FILE around every run so a\n"
        "                       supervisor (espnuca-swarm) can detect\n"
        "                       stalls and attribute crashes\n"
        "  --trace-out FILE     write a Chrome/Perfetto trace of run 0\n"
        "  --trace-filter W     trace categories: all | tx | bank | core\n"
        "  --metrics-interval N sample epoch telemetry every N cycles\n"
        "  --prof               collect wall-clock self-profiling\n"
        "  --l2-mb N --banks N --ways N --mem-latency N --cores N\n"
        "  --window N --mshrs N --d N\n"
        "  --mesh CxR           mesh grid dimensions (default: let the\n"
        "                       placement builder derive them)\n"
        "  --placement SPEC     core/bank/controller placement:\n"
        "                       paper-4x3 | tiled | @FILE with an\n"
        "                       espnuca-placement-v1 map (e.g. from\n"
        "                       espnuca-place)\n"
        "  --list-archs, --list-workloads, --help\n");
    std::exit(code);
}

std::uint64_t
parseU64(const char *s)
{
    return std::strtoull(s, nullptr, 10);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        // --opt=value spelling: split at the first '='.
        std::string inlineVal;
        bool hasInline = false;
        if (a.size() > 2 && a[0] == '-' && a[1] == '-') {
            const std::size_t eq = a.find('=');
            if (eq != std::string::npos) {
                inlineVal = a.substr(eq + 1);
                a.erase(eq);
                hasInline = true;
            }
        }
        auto next = [&]() -> const char * {
            if (hasInline)
                return inlineVal.c_str();
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage(0);
        } else if (a == "--list-archs") {
            for (const char *n :
                 {"shared", "private", "sp-nuca", "sp-nuca-static",
                  "sp-nuca-shadow", "esp-nuca", "esp-nuca-flat",
                  "d-nuca", "asr", "cc-0", "cc-30", "cc-70", "cc-100"})
                std::printf("%s\n", n);
            std::exit(0);
        } else if (a == "--list-workloads") {
            for (const auto &w : allWorkloads())
                std::printf("%s\n", w.c_str());
            std::exit(0);
        } else if (a == "--arch") {
            o.arch = next();
        } else if (a == "--workload") {
            o.workload = next();
        } else if (a == "--ops") {
            o.ops = parseU64(next());
        } else if (a == "--seed") {
            o.seed = parseU64(next());
        } else if (a == "--runs") {
            o.runs = static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--jobs") {
            o.jobs = static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--warmup") {
            o.warmup = std::atof(next());
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--stats") {
            o.stats = true;
        } else if (a == "--csv") {
            o.csv = true;
        } else if (a == "--record-trace") {
            o.recordTrace = next();
        } else if (a == "--replay-trace") {
            o.replayTrace = next();
        } else if (a == "--fault-plan") {
            o.faultPlan = next();
        } else if (a == "--watchdog") {
            o.system.watchdogStallCycles = parseU64(next());
        } else if (a == "--max-cycles") {
            o.system.watchdogMaxCycles = parseU64(next());
        } else if (a == "--retries") {
            o.retries = static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--checkpoint") {
            o.checkpointDir = next();
        } else if (a == "--shard") {
            try {
                o.shard = ShardSpec::parse(next());
                o.haveShard = true;
            } catch (const std::exception &e) {
                std::fprintf(stderr, "%s\n", e.what());
                usage(2);
            }
        } else if (a == "--list-points") {
            o.listPoints = true;
        } else if (a == "--heartbeat") {
            o.heartbeatPath = next();
        } else if (a == "--trace-out") {
            o.traceOut = next();
        } else if (a == "--trace-filter") {
            const std::string w = next();
            if (!obs::parseTraceFilter(w, o.traceMask)) {
                std::fprintf(stderr, "unknown trace filter: %s\n",
                             w.c_str());
                usage(2);
            }
        } else if (a == "--metrics-interval") {
            o.metricsInterval = parseU64(next());
        } else if (a == "--prof") {
            o.prof = true;
        } else if (a == "--l2-mb") {
            o.system.l2SizeBytes = parseU64(next()) << 20;
        } else if (a == "--banks") {
            o.system.l2Banks =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--ways") {
            o.system.l2Ways =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--mem-latency") {
            o.system.memLatency = parseU64(next());
        } else if (a == "--cores") {
            o.system.numCores =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--window") {
            o.system.windowSize =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--mshrs") {
            o.system.maxOutstanding =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--d") {
            o.system.degradationShift =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--mesh") {
            const std::string v = next();
            const std::size_t x = v.find('x');
            if (x == std::string::npos) {
                std::fprintf(stderr,
                             "--mesh expects CxR (e.g. 8x4), got %s\n",
                             v.c_str());
                usage(2);
            }
            o.system.meshCols = static_cast<std::uint32_t>(
                parseU64(v.substr(0, x).c_str()));
            o.system.meshRows = static_cast<std::uint32_t>(
                parseU64(v.substr(x + 1).c_str()));
        } else if (a == "--placement") {
            std::string v = next();
            if (!v.empty() && v[0] == '@') {
                // Inline the file's content: the config (and every
                // digest derived from it) must cover the map itself,
                // not a path that may point at different bytes later.
                std::ifstream in(v.substr(1));
                if (!in) {
                    std::fprintf(stderr,
                                 "--placement: cannot open %s\n",
                                 v.c_str() + 1);
                    std::exit(2);
                }
                std::ostringstream ss;
                ss << in.rdbuf();
                v = ss.str();
            }
            o.system.placement = v;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage(2);
        }
    }
    // Structured diagnosis instead of an assert mid-construction: name
    // the offending knob for arithmetic inconsistencies (validate())
    // and for placement-content errors (forConfig()).
    const std::string err = o.system.validate();
    if (!err.empty()) {
        std::fprintf(stderr, "inconsistent system configuration: %s\n",
                     err.c_str());
        std::exit(2);
    }
    try {
        (void)PlacementMap::forConfig(o.system);
    } catch (const PlacementError &e) {
        std::fprintf(stderr, "inconsistent system configuration: %s\n",
                     e.what());
        std::exit(2);
    }
    return o;
}

/** Experiment-level view of the CLI options (digest, checkpoint key). */
ExperimentConfig
cliConfig(const Options &o)
{
    ExperimentConfig cfg;
    cfg.system = o.system;
    cfg.opsPerCore = o.ops;
    cfg.runs = o.runs;
    cfg.baseSeed = o.seed;
    cfg.warmupFraction = o.warmup;
    cfg.faultPlan = o.faultPlan;
    cfg.maxAttempts = o.retries;
    cfg.checkpointDir = o.checkpointDir;
    return cfg;
}

/** Stable identity of seeded run r: arch x workload x seed x config —
 *  the same partitioning scheme the bench sweep engine uses, applied
 *  at the granularity espnuca-sim works at (individual runs). */
std::uint64_t
runHash(const Options &o, std::uint32_t r)
{
    SnapshotWriter w;
    w.str(o.arch);
    w.str(o.workload);
    w.u64(o.seed + r * 7919);
    w.u64(experimentConfigDigest(cliConfig(o)));
    // Finalized like pointHash(): raw FNV-1a parity is too structured
    // for `hash % N` shard assignment (see sweep.hpp).
    return splitmix64(fnv1a(w.bytes().data(), w.bytes().size()));
}

/**
 * Arm the observability hooks, run, and drain the trace. `traced` is
 * true only for the first repetition — one trace file per invocation.
 */
RunResult
runSystem(const Options &o, System &sys, bool traced)
{
    if (o.metricsInterval > 0)
        sys.enableMetrics(o.metricsInterval);
    if (traced)
        sys.enableTracing(o.traceMask);
    RunResult r = sys.run();
    if (traced)
        sys.exportTrace(o.traceOut);
    if (o.stats) {
        sys.dumpStats(std::cout);
        // Machine-readable twin of the dump (extended collection), for
        // the "stats" block of JSON output.
        StatsRegistry ext;
        sys.collectStats(ext, true);
        r.statsJson = statsToJson(ext);
    }
    return r;
}

RunResult
runOnce(const Options &o, std::uint64_t seed, const FaultPlan *plan,
        bool traced)
{
    const SystemConfig &cfg = o.system;
    if (!o.replayTrace.empty()) {
        std::vector<std::unique_ptr<TraceSource>> sources(cfg.numCores);
        std::uint64_t total = 0;
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            const std::string path =
                o.replayTrace + "/core" + std::to_string(c) + ".trace";
            std::ifstream probe(path);
            if (probe.good()) {
                sources[c] = std::make_unique<FileTraceSource>(path);
                total += o.ops; // upper bound for the warmup threshold
            }
        }
        System sys(cfg, o.arch, "replay:" + o.replayTrace,
                   std::move(sources), seed, o.warmup, total, plan);
        return runSystem(o, sys, traced);
    }

    if (!o.checkpointDir.empty()) {
        // Phased warmup with snapshot fast-forward: the warmup prefix
        // runs (or restores) as its own drained epoch, so the System is
        // built internally and runSystem's observability hooks don't
        // apply; --stats still works through the phased stats dump.
        std::string stats;
        const RunResult r = simulatePhased(
            cfg, o.arch, o.workload, o.ops, seed, o.warmup, plan,
            checkpointPath(cliConfig(o), o.arch, o.workload, seed),
            nullptr, o.stats ? &stats : nullptr, o.metricsInterval);
        if (o.stats)
            std::cout << stats;
        return r;
    }

    const Workload wl = makeWorkload(o.workload, cfg, o.ops, seed);
    if (!o.recordTrace.empty()) {
        std::vector<std::unique_ptr<TraceSource>> sources(cfg.numCores);
        std::uint64_t total = 0;
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            if (wl.cores[c].ops == 0)
                continue;
            total += wl.cores[c].ops;
            auto inner = std::make_unique<SyntheticSource>(
                cfg, wl.cores[c], seed * 1000003ULL + c);
            sources[c] = std::make_unique<RecordingSource>(
                std::move(inner),
                o.recordTrace + "/core" + std::to_string(c) + ".trace");
        }
        System sys(cfg, o.arch, wl.name, std::move(sources), seed,
                   o.warmup, total, plan);
        return runSystem(o, sys, traced);
    }

    System sys(cfg, o.arch, wl, seed, o.warmup, plan);
    return runSystem(o, sys, traced);
}

/**
 * One crash-isolated CLI run: retry with a fresh seed-derived stream up
 * to o.retries times, then surface the final failure as data. Attempt 0
 * uses the historical seed formula, so healthy runs are bit-identical
 * to earlier versions of the tool.
 */
RunOutcome
attemptCli(const Options &o, std::uint32_t r, const FaultPlan *plan)
{
    RunOutcome out;
    const bool traced = !o.traceOut.empty() && r == 0;
    const std::uint32_t tries = o.retries == 0 ? 1 : o.retries;
    for (std::uint32_t a = 0; a < tries; ++a) {
        const std::uint64_t base = o.seed + r * 7919;
        const std::uint64_t seed =
            a == 0 ? base
                   : splitmix64(base ^ (0x9E3779B97F4A7C15ULL * a));
        try {
            out.result = runOnce(o, seed, plan, traced);
            return out;
        } catch (const std::exception &e) {
            out.failure = RunFailure{r, seed, a + 1, e.what()};
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);

    std::optional<FaultPlan> plan;
    if (!o.faultPlan.empty()) {
        try {
            plan = FaultPlan::parse(o.faultPlan);
            plan->validate(o.system);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }
    const FaultPlan *planPtr = plan ? &*plan : nullptr;

    const std::uint32_t shardCount = o.haveShard ? o.shard.count : 1;
    const std::uint32_t shardIndex = o.haveShard ? o.shard.index : 0;

    if (o.listPoints) {
        std::printf("%-16s %5s %4s %12s  %s\n", "hash", "shard", "run",
                    "seed", "config_digest");
        std::size_t mine = 0;
        for (std::uint32_t r = 0; r < o.runs; ++r) {
            const std::uint64_t h = runHash(o, r);
            const auto owner = static_cast<std::uint32_t>(h % shardCount);
            if (owner == shardIndex)
                ++mine;
            std::printf("%s %5u %4u %12llu  %s\n",
                        digestHex(h).c_str(), owner, r,
                        static_cast<unsigned long long>(o.seed +
                                                        r * 7919),
                        digestHex(experimentConfigDigest(cliConfig(o)))
                            .c_str());
        }
        std::printf("%u run(s)", o.runs);
        if (o.haveShard)
            std::printf(", %zu in shard %u/%u", mine, shardIndex,
                        shardCount);
        std::printf("; build %s\n", buildDescribe().c_str());
        return 0;
    }

    // Stable shard partition over the seeded runs: every shard walks
    // the same hashes, so N shards cover each run exactly once.
    std::vector<std::uint32_t> selected;
    selected.reserve(o.runs);
    for (std::uint32_t r = 0; r < o.runs; ++r)
        if (!o.haveShard || runHash(o, r) % shardCount == shardIndex)
            selected.push_back(r);

    if (o.prof)
        obs::setProfiling(true);

    if (o.csv)
        std::printf("%s\n", csvHeader().c_str());
    JsonWriter json;
    if (o.json) {
        // --prof wraps the legacy run array in {"runs": ..., "prof": ...};
        // without it the output shape is unchanged.
        if (o.prof) {
            json.beginObject();
            json.key("runs");
        }
        json.beginArray();
    }

    // Multi-run mode fans the seeds across a worker pool; results are
    // reported in seed order, so the output matches a serial sweep.
    // Trace recording, lifecycle tracing and stats dumps write as they
    // run, so those modes stay serial.
    const std::uint32_t jobs =
        o.jobs != 0 ? o.jobs : ThreadPool::defaultJobs();
    const bool parallel = jobs > 1 && selected.size() > 1 && !o.stats &&
                          o.recordTrace.empty() && o.traceOut.empty();
    std::optional<ThreadPool> pool;
    std::vector<std::future<RunOutcome>> futs;
    if (parallel) {
        pool.emplace(jobs);
        futs.reserve(selected.size());
        for (const std::uint32_t r : selected)
            futs.push_back(pool->submit(
                [&o, r, planPtr]() { return attemptCli(o, r, planPtr); }));
    }

    Heartbeat hb;
    hb.total = selected.size();
    hb.arch = o.arch;
    hb.workload = o.workload;
    hb.state = "start";
    writeHeartbeat(o.heartbeatPath, hb);

    RunningStats thr;
    std::uint32_t failed = 0;
    for (std::size_t k = 0; k < selected.size(); ++k) {
        const std::uint32_t r = selected[k];
        hb.state = "run-start";
        hb.pointHash = runHash(o, r);
        hb.index = r;
        writeHeartbeat(o.heartbeatPath, hb);
        const RunOutcome out =
            parallel ? futs[k].get() : attemptCli(o, r, planPtr);
        ++hb.done;
        hb.state = "run-done";
        writeHeartbeat(o.heartbeatPath, hb);
        if (!out.result) {
            ++failed;
            const RunFailure &f = out.failure;
            if (o.json) {
                json.beginObject();
                json.field("run", static_cast<std::uint64_t>(f.runIndex));
                json.field("seed", f.seed);
                json.field("attempts",
                           static_cast<std::uint64_t>(f.attempts));
                json.field("error", f.error);
                json.endObject();
            } else {
                std::fprintf(stderr,
                             "run %u FAILED after %u attempt(s): %s\n", r,
                             f.attempts, f.error.c_str());
            }
            continue;
        }
        const RunResult &res = *out.result;
        thr.record(res.throughput);
        if (o.json) {
            writeRunJson(json, res);
        } else if (o.csv) {
            std::printf("%s\n", runToCsv(res).c_str());
        } else {
            std::printf("run %u: arch=%s workload=%s throughput=%.3f "
                        "avgIpc=%.3f accessTime=%.2f offchip=%llu\n",
                        r, res.arch.c_str(), res.workload.c_str(),
                        res.throughput, res.avgIpc, res.avgAccessTime,
                        static_cast<unsigned long long>(
                            res.offChipAccesses));
        }
    }
    hb.state = "shard-done";
    hb.pointHash = 0;
    writeHeartbeat(o.heartbeatPath, hb);
    StatsRegistry profReg;
    if (o.prof)
        obs::ProfRegistry::instance().collect(profReg);
    if (o.json) {
        json.endArray();
        if (o.prof) {
            json.key("prof");
            json.beginObject();
            for (const auto &[name, c] : profReg.counters())
                json.field(name, c.value());
            json.endObject();
            json.endObject();
        }
        std::printf("%s\n", json.str().c_str());
    } else if (!o.csv && selected.size() > 1) {
        std::printf("throughput mean=%.3f ci95=%.3f over %zu runs\n",
                    thr.mean(), thr.ci95(), selected.size());
    }
    if (o.prof && !o.json) {
        std::ostringstream os;
        profReg.dump(os);
        std::printf("%s", os.str().c_str());
    }
    return failed == 0 ? 0 : 1;
}
