# Sweep-integrity checks for the layout knobs: running the same bench
# under a different placement must (a) move every point hash — sharded
# artifacts can never collide across layouts — and (b) produce point
# files that espnuca-merge refuses to combine with the default-layout
# sweep (grid mismatch, exit 7), because the config section differs.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

set(env ${CMAKE_COMMAND} -E env
    ESPNUCA_OPS=300 ESPNUCA_RUNS=1 ESPNUCA_JOBS=2
    --unset=ESPNUCA_CKPT_DIR --unset=ESPNUCA_PLACEMENT
    --unset=ESPNUCA_MESH)
set(tiled_env ${CMAKE_COMMAND} -E env
    ESPNUCA_OPS=300 ESPNUCA_RUNS=1 ESPNUCA_JOBS=2
    ESPNUCA_PLACEMENT=tiled
    --unset=ESPNUCA_CKPT_DIR --unset=ESPNUCA_MESH)

# (a) Point hashes move when the placement (or mesh) changes.
execute_process(
    COMMAND ${env} ${BENCH} --list-points
    RESULT_VARIABLE r
    OUTPUT_VARIABLE default_points
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "--list-points (default) failed: ${r}")
endif()
execute_process(
    COMMAND ${tiled_env} ${BENCH} --list-points
    RESULT_VARIABLE r
    OUTPUT_VARIABLE tiled_points
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "--list-points (tiled) failed: ${r}")
endif()
# Compare the hash column sets: no default-layout hash may survive.
string(REGEX MATCHALL "[0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f] "
       default_hashes "${default_points}")
foreach(h ${default_hashes})
    string(FIND "${tiled_points}" "${h}" found)
    if(NOT found EQUAL -1)
        message(FATAL_ERROR
                "point hash ${h} unchanged by ESPNUCA_PLACEMENT=tiled")
    endif()
endforeach()
list(LENGTH default_hashes nhashes)
if(nhashes EQUAL 0)
    message(FATAL_ERROR "--list-points produced no hashes to compare")
endif()
execute_process(
    COMMAND ${env} ${CMAKE_COMMAND} -E env ESPNUCA_MESH=4x4
            ${BENCH} --list-points
    RESULT_VARIABLE r
    OUTPUT_VARIABLE meshed_points
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "--list-points (meshed) failed: ${r}")
endif()
list(GET default_hashes 0 h0)
string(FIND "${meshed_points}" "${h0}" found)
if(NOT found EQUAL -1)
    message(FATAL_ERROR "point hash ${h0} unchanged by ESPNUCA_MESH=4x4")
endif()

# (b) Mixed-placement point directories refuse to merge (exit 7).
execute_process(
    COMMAND ${env} ${BENCH} --shard 0/1 --results-dir ${WORKDIR}/points
    RESULT_VARIABLE r
    OUTPUT_QUIET
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "default-layout sweep failed: ${r}")
endif()
execute_process(
    COMMAND ${tiled_env} ${BENCH} --shard 0/1
            --results-dir ${WORKDIR}/points
    RESULT_VARIABLE r
    OUTPUT_QUIET
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "tiled-layout sweep failed: ${r}")
endif()
execute_process(
    COMMAND ${MERGE} --results-dir ${WORKDIR}/points
            --out ${WORKDIR}/merged.json
    RESULT_VARIABLE r
    OUTPUT_QUIET
    ERROR_VARIABLE merge_err
)
if(NOT r EQUAL 7)
    message(FATAL_ERROR
            "espnuca-merge accepted a mixed-placement directory "
            "(exit ${r}, wanted 7/grid-mismatch): ${merge_err}")
endif()
file(REMOVE_RECURSE ${WORKDIR})
