# Byte-compatibility proof for the placement refactor: the paper
# configuration must produce byte-identical artifacts to the frozen
# pre-refactor goldens under tests/golden/ — per-arch --stats dumps
# (serial; --stats disables the parallel path by design), per-arch
# --json documents (serial AND --jobs 4: the parallel runner is
# bit-identical by contract), and the fig07 bench JSON modulo the
# volatile build.describe string (normalized to GOLDEN on both sides
# at capture time). Any intentional behavior change must re-capture
# the goldens and say so in the PR.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

set(archs shared private sp-nuca sp-nuca-static sp-nuca-shadow
    esp-nuca esp-nuca-flat d-nuca asr cc-0 cc-30 cc-70 cc-100)

foreach(arch ${archs})
    execute_process(
        COMMAND ${SIM} --arch ${arch} --workload apache --ops 3000
                --runs 1 --warmup 0.25 --seed 5 --stats
        OUTPUT_FILE ${WORKDIR}/${arch}.stats.txt
        RESULT_VARIABLE r
    )
    if(NOT r EQUAL 0)
        message(FATAL_ERROR "stats run failed for ${arch}: ${r}")
    endif()
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/${arch}.stats.txt ${GOLDEN}/stats/${arch}.txt
        RESULT_VARIABLE r
    )
    if(NOT r EQUAL 0)
        message(FATAL_ERROR
                "--stats dump for ${arch} differs from the frozen "
                "pre-placement golden")
    endif()

    foreach(jobs 1 4)
        execute_process(
            COMMAND ${SIM} --arch ${arch} --workload apache --ops 3000
                    --runs 2 --warmup 0.25 --seed 5 --json
                    --jobs ${jobs}
            OUTPUT_FILE ${WORKDIR}/${arch}.j${jobs}.json
            RESULT_VARIABLE r
        )
        if(NOT r EQUAL 0)
            message(FATAL_ERROR
                    "json run failed for ${arch} (jobs ${jobs}): ${r}")
        endif()
        execute_process(
            COMMAND ${CMAKE_COMMAND} -E compare_files
                    ${WORKDIR}/${arch}.j${jobs}.json
                    ${GOLDEN}/json/${arch}.json
            RESULT_VARIABLE r
        )
        if(NOT r EQUAL 0)
            message(FATAL_ERROR
                    "--json document for ${arch} (jobs ${jobs}) differs "
                    "from the frozen pre-placement golden")
        endif()
    endforeach()
endforeach()

# Bench document: pinned ops/runs/jobs (the config section records the
# resolved worker count), describe normalized like the golden.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            ESPNUCA_OPS=1000 ESPNUCA_RUNS=2 ESPNUCA_JOBS=2
            --unset=ESPNUCA_CKPT_DIR --unset=ESPNUCA_PLACEMENT
            --unset=ESPNUCA_MESH
            ${BENCH} --json ${WORKDIR}/fig07.raw.json
    RESULT_VARIABLE r
    OUTPUT_QUIET
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "fig07 bench run failed: ${r}")
endif()
file(READ ${WORKDIR}/fig07.raw.json doc)
string(REGEX REPLACE "\"describe\":\"[^\"]*\"" "\"describe\":\"GOLDEN\""
       doc "${doc}")
file(WRITE ${WORKDIR}/fig07.json "${doc}")
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/fig07.json ${GOLDEN}/bench/fig07.json
    RESULT_VARIABLE r
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR
            "fig07 bench JSON differs from the frozen pre-placement "
            "golden (after describe normalization)")
endif()
file(REMOVE_RECURSE ${WORKDIR})
