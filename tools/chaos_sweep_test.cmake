# Chaos acceptance test for the crash-safe sweep supervisor: run a
# small fig07 grid unsupervised for the reference document, then run the
# same grid under espnuca-swarm with --chaos randomly SIGKILLing
# workers, merge the surviving per-point files, and byte-compare the
# merged document against the unsupervised run — worker death at any
# instant must not change a single result byte. Then deliberately
# corrupt and remove point files to prove espnuca-merge's
# machine-readable exit codes (5 = checksum, 8 = incomplete grid).
#
# ESPNUCA_JOBS is pinned because the config section records the
# resolved worker count; ESPNUCA_CKPT_DIR is cleared because phased
# warmup deliberately produces different (self-consistent) results
# than the default continuous warmup. The env is set process-wide (not
# per-command) so the supervisor's fork/exec'd workers inherit it.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

set(ENV{ESPNUCA_OPS} 2000)
set(ENV{ESPNUCA_RUNS} 2)
set(ENV{ESPNUCA_JOBS} 2)
unset(ENV{ESPNUCA_CKPT_DIR})

execute_process(
    COMMAND ${BENCH} --json ${WORKDIR}/unsharded.json
    RESULT_VARIABLE r
    OUTPUT_QUIET
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "unsupervised run failed: ${r}")
endif()

# Supervised run with induced kills. Short backoff keeps the test
# quick; the generous restart budget absorbs however many kills the
# chaos schedule lands.
execute_process(
    COMMAND ${SWARM} --results-dir ${WORKDIR}/points --shards 2
            --chaos 8 --chaos-seed 42 --poll 10
            --backoff-ms 5 --backoff-cap-ms 50
            --stall-timeout 120000 --max-restarts 500 --quiet
            -- ${BENCH}
    RESULT_VARIABLE r
    OUTPUT_VARIABLE swarm_out
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "supervised sweep failed: ${r}\n${swarm_out}")
endif()
string(FIND "${swarm_out}" " 0 worker death(s)" no_kills)
if(NOT no_kills EQUAL -1)
    message(FATAL_ERROR
            "chaos mode killed no workers — the test proved nothing:\n"
            "${swarm_out}")
endif()
string(FIND "${swarm_out}" "0 point(s) quarantined" found)
if(found EQUAL -1)
    message(FATAL_ERROR
            "chaos kills must never be charged into quarantine:\n"
            "${swarm_out}")
endif()

execute_process(
    COMMAND ${MERGE} --results-dir ${WORKDIR}/points
            --out ${WORKDIR}/merged.json --json-errors
    RESULT_VARIABLE r
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "merge failed: ${r}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/unsharded.json ${WORKDIR}/merged.json
    RESULT_VARIABLE r
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR
            "merged document differs from the unsupervised run")
endif()

# --- run ledger + live telemetry (observability build only) ----------
# Random kills landed above; the ledger must still be complete: every
# line CRC-valid (at most a torn tail per writer), and every
# point-start resolved by a terminal event somewhere in the fleet.
if(OBS AND PYTHON)
    file(GLOB shard_ledgers ${WORKDIR}/points/events-shard-*.jsonl)
    if(NOT EXISTS ${WORKDIR}/points/events-supervisor.jsonl)
        message(FATAL_ERROR "supervisor ledger missing")
    endif()
    if(shard_ledgers STREQUAL "")
        message(FATAL_ERROR "no shard ledgers written")
    endif()
    execute_process(
        COMMAND ${PYTHON} ${CHECKER} --ledger
                ${WORKDIR}/points/events-supervisor.jsonl
                ${shard_ledgers}
        RESULT_VARIABLE r
        OUTPUT_VARIABLE ledger_out
    )
    if(NOT r EQUAL 0)
        message(FATAL_ERROR "ledger validation failed: ${r}")
    endif()

    # espnuca-top totals must agree with the merged bench document:
    # every grid point terminal, none quarantined, chaos kills visible.
    execute_process(
        COMMAND ${TOP} --results-dir ${WORKDIR}/points --json
        RESULT_VARIABLE r
        OUTPUT_VARIABLE top_json
    )
    if(NOT r EQUAL 0)
        message(FATAL_ERROR "espnuca-top failed: ${r}")
    endif()
    string(JSON top_total GET "${top_json}" totals total)
    string(JSON top_done GET "${top_json}" totals done)
    string(JSON top_terminal GET "${top_json}" totals points_terminal)
    string(JSON top_quarantined GET "${top_json}" totals quarantined)
    string(JSON top_kills GET "${top_json}" supervisor chaos_kills)
    file(READ ${WORKDIR}/merged.json merged_doc)
    string(JSON merged_points LENGTH "${merged_doc}" points)
    if(NOT top_total EQUAL merged_points)
        message(FATAL_ERROR
                "espnuca-top total ${top_total} != merged document's "
                "${merged_points} point(s)")
    endif()
    if(NOT top_done EQUAL top_total OR NOT top_terminal EQUAL top_total)
        message(FATAL_ERROR
                "espnuca-top reports an unfinished swarm: done "
                "${top_done}, terminal ${top_terminal} of ${top_total}")
    endif()
    if(NOT top_quarantined EQUAL 0)
        message(FATAL_ERROR
                "chaos kills leaked into quarantine: "
                "${top_quarantined}")
    endif()
    if(top_kills EQUAL 0)
        message(FATAL_ERROR
                "supervisor ledger recorded no chaos kills")
    endif()

    # Swarm Perfetto timeline: supervisor + shard tracks, point slices.
    execute_process(
        COMMAND ${TOP} --results-dir ${WORKDIR}/points
                --perfetto ${WORKDIR}/swarm.json
        RESULT_VARIABLE r
        OUTPUT_QUIET
    )
    if(NOT r EQUAL 0)
        message(FATAL_ERROR "swarm timeline export failed: ${r}")
    endif()
    execute_process(
        COMMAND ${PYTHON} ${CHECKER} --swarm ${WORKDIR}/swarm.json
        RESULT_VARIABLE r
    )
    if(NOT r EQUAL 0)
        message(FATAL_ERROR "swarm timeline validation failed: ${r}")
    endif()
endif()

# --- machine-readable merge exit codes -------------------------------
# Find one real point file (16-hex-digit stem; heartbeats and the
# quarantine file share the directory).
set(victim "")
file(GLOB candidates ${WORKDIR}/points/*.json)
foreach(f ${candidates})
    get_filename_component(stem ${f} NAME_WE)
    string(LENGTH "${stem}" n)
    if(n EQUAL 16)
        set(victim ${f})
        break()
    endif()
endforeach()
if(victim STREQUAL "")
    message(FATAL_ERROR "no point file found to corrupt")
endif()

# Flipped content => exit 5 (checksum mismatch), cause string in the
# --json-errors report.
file(READ ${victim} original)
file(WRITE ${victim} "${original}garbage")
execute_process(
    COMMAND ${MERGE} --results-dir ${WORKDIR}/points
            --out ${WORKDIR}/merged2.json --json-errors
    RESULT_VARIABLE r
    OUTPUT_VARIABLE merge_out
    ERROR_QUIET
)
if(NOT r EQUAL 4)
    # trailing garbage breaks the record frame => bad-record (4)
    message(FATAL_ERROR
            "corrupt point file: expected exit 4, got ${r}")
endif()
file(WRITE ${victim} "${original}")

# Flip a content byte (keep the frame) => checksum mismatch (5).
string(REGEX REPLACE "\"bench\":\"fig" "\"bench\":\"gif" flipped
       "${original}")
if(flipped STREQUAL "${original}")
    message(FATAL_ERROR "bit-flip substitution failed")
endif()
file(WRITE ${victim} "${flipped}")
execute_process(
    COMMAND ${MERGE} --results-dir ${WORKDIR}/points
            --out ${WORKDIR}/merged2.json --json-errors
    RESULT_VARIABLE r
    OUTPUT_VARIABLE merge_out
    ERROR_QUIET
)
if(NOT r EQUAL 5)
    message(FATAL_ERROR
            "flipped point file: expected exit 5, got ${r}")
endif()
string(FIND "${merge_out}" "checksum-mismatch" found)
if(found EQUAL -1)
    message(FATAL_ERROR
            "--json-errors report missing cause: ${merge_out}")
endif()

# Missing point file => incomplete grid (8).
file(REMOVE ${victim})
execute_process(
    COMMAND ${MERGE} --results-dir ${WORKDIR}/points
            --out ${WORKDIR}/merged2.json --json-errors
    RESULT_VARIABLE r
    OUTPUT_VARIABLE merge_out
    ERROR_QUIET
)
if(NOT r EQUAL 8)
    message(FATAL_ERROR
            "missing point file: expected exit 8, got ${r}")
endif()
string(FIND "${merge_out}" "incomplete-grid" found)
if(found EQUAL -1)
    message(FATAL_ERROR
            "--json-errors report missing cause: ${merge_out}")
endif()

file(REMOVE_RECURSE ${WORKDIR})
