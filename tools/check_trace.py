#!/usr/bin/env python3
"""CI validator for espnuca-sim observability output.

Usage:
    check_trace.py TRACE_JSON [RUN_JSON]

TRACE_JSON is a Chrome/Perfetto trace_event file written by
--trace-out. The check fails unless the file parses, contains at least
one *complete* transaction span ("ph":"X", cat "tx"), and that span
correlates (via args.tx) with at least one bank-probe and one mesh-hop
event — i.e. a full transaction lifecycle was captured.

RUN_JSON, if given, is the --json output of the same run and must carry
a non-empty "timeseries" whose per-bank entries expose nmax and the
three set-class EMAs (hr_ref / hr_conv / hr_exp).
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")

    spans = [e for e in events
             if e.get("ph") == "X" and e.get("cat") == "tx"]
    if not spans:
        fail(f"{path}: no complete transaction span (ph=X, cat=tx)")

    probe_txs = {e["args"]["tx"] for e in events
                 if e.get("name") == "probe" and "args" in e}
    hop_txs = {e["args"]["tx"] for e in events
               if e.get("name") == "hop" and "args" in e}
    full = [s for s in spans
            if s["args"]["tx"] in probe_txs and s["args"]["tx"] in hop_txs]
    if not full:
        fail(f"{path}: no span correlates with both a bank probe "
             f"and a mesh hop")

    for s in full[:1]:
        if s.get("dur", -1) < 0:
            fail(f"{path}: span has no duration")
    print(f"check_trace: OK: {len(spans)} span(s), "
          f"{len(full)} with full probe+hop lifecycle, "
          f"{len(events)} event(s) total")


def check_run(path: str) -> None:
    with open(path) as f:
        doc = json.load(f)
    runs = doc["runs"] if isinstance(doc, dict) and "runs" in doc else doc
    if not isinstance(runs, list) or not runs:
        fail(f"{path}: no runs array")
    series = runs[0].get("timeseries")
    if not series:
        fail(f"{path}: run 0 has no (or an empty) timeseries")
    banks = series[-1].get("banks")
    if not banks:
        fail(f"{path}: last sample has no banks array")
    needed = {"nmax", "hr_ref", "hr_conv", "hr_exp"}
    missing = needed - set(banks[0])
    if missing:
        fail(f"{path}: bank metrics missing {sorted(missing)}")
    print(f"check_trace: OK: {len(series)} sample(s), "
          f"{len(banks)} bank(s) with nmax + set-class EMAs")


def main(argv: list) -> None:
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_trace(argv[1])
    if len(argv) == 3:
        check_run(argv[2])


if __name__ == "__main__":
    main(sys.argv)
