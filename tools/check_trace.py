#!/usr/bin/env python3
"""CI validator for espnuca observability output.

Usage:
    check_trace.py TRACE_JSON [RUN_JSON]
    check_trace.py --counters TRACE_JSON
    check_trace.py --swarm SWARM_TRACE_JSON
    check_trace.py --ledger LEDGER_JSONL [LEDGER_JSONL ...]

Default mode: TRACE_JSON is a Chrome/Perfetto trace_event file written
by --trace-out. The check fails unless the file parses, contains at
least one *complete* transaction span ("ph":"X", cat "tx"), and that
span correlates (via args.tx) with at least one bank-probe and one
mesh-hop event — i.e. a full transaction lifecycle was captured.
RUN_JSON, if given, is the --json output of the same run and must carry
a non-empty "timeseries" whose per-bank entries expose nmax and the
three set-class EMAs (hr_ref / hr_conv / hr_exp).

--counters: the same trace must additionally carry the epoch-telemetry
counter tracks (pid 5, "ph":"C"): every expected series present, at
least one sample each, timestamps non-decreasing per series.

--swarm: validates an espnuca-top --perfetto swarm timeline: per-shard
process_name metadata, at least one completed-point slice ("ph":"X",
cat "point") carrying a 16-hex args.point_hash, and non-negative
durations.

--ledger: validates espnuca-events-v1 JSONL ledgers: every line's
CRC32C content trailer verifies (torn tails are reported, not
crashed on), seq is strictly increasing per writer process (a
restarted worker appends to the same shard ledger with a fresh pid
and a fresh seq space), all records agree on one run id, and every
point-start reaches a terminal event (point-finish / point-skip /
point-quarantine-skip / supervisor point-quarantine) across the
given files.
"""

import json
import sys

EXPECTED_COUNTERS = {
    "mshr_depth", "in_flight", "mesh_flits", "link_wait", "mem_accesses",
}

TERMINAL_EVENTS = {
    "point-finish", "point-skip", "point-quarantine-skip",
    "point-quarantine",
}


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")

    spans = [e for e in events
             if e.get("ph") == "X" and e.get("cat") == "tx"]
    if not spans:
        fail(f"{path}: no complete transaction span (ph=X, cat=tx)")

    probe_txs = {e["args"]["tx"] for e in events
                 if e.get("name") == "probe" and "args" in e}
    hop_txs = {e["args"]["tx"] for e in events
               if e.get("name") == "hop" and "args" in e}
    full = [s for s in spans
            if s["args"]["tx"] in probe_txs and s["args"]["tx"] in hop_txs]
    if not full:
        fail(f"{path}: no span correlates with both a bank probe "
             f"and a mesh hop")

    for s in full[:1]:
        if s.get("dur", -1) < 0:
            fail(f"{path}: span has no duration")
    print(f"check_trace: OK: {len(spans)} span(s), "
          f"{len(full)} with full probe+hop lifecycle, "
          f"{len(events)} event(s) total")


def check_run(path: str) -> None:
    with open(path) as f:
        doc = json.load(f)
    runs = doc["runs"] if isinstance(doc, dict) and "runs" in doc else doc
    if not isinstance(runs, list) or not runs:
        fail(f"{path}: no runs array")
    series = runs[0].get("timeseries")
    if not series:
        fail(f"{path}: run 0 has no (or an empty) timeseries")
    banks = series[-1].get("banks")
    if not banks:
        fail(f"{path}: last sample has no banks array")
    needed = {"nmax", "hr_ref", "hr_conv", "hr_exp"}
    missing = needed - set(banks[0])
    if missing:
        fail(f"{path}: bank metrics missing {sorted(missing)}")
    print(f"check_trace: OK: {len(series)} sample(s), "
          f"{len(banks)} bank(s) with nmax + set-class EMAs")


def check_counters(path: str) -> None:
    """Epoch-telemetry counter tracks (pid 5, ph=C) in a run trace."""
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")
    names = {e.get("args", {}).get("name") for e in events
             if e.get("ph") == "M" and e.get("name") == "process_name"}
    if "counters" not in names:
        fail(f"{path}: no 'counters' process_name metadata (pid 5)")
    series: dict = {}
    for e in events:
        if e.get("ph") != "C" or e.get("pid") != 5:
            continue
        name = e.get("name")
        args = e.get("args", {})
        if name not in args:
            fail(f"{path}: counter event {name!r} lacks its own series "
                 f"value in args")
        series.setdefault(name, []).append((e.get("ts"), args[name]))
    missing = EXPECTED_COUNTERS - set(series)
    if missing:
        fail(f"{path}: counter series missing {sorted(missing)}")
    for name, points in series.items():
        ts = [t for t, _ in points]
        if ts != sorted(ts):
            fail(f"{path}: counter {name!r} timestamps not "
                 f"non-decreasing")
        if any(v < 0 for _, v in points):
            fail(f"{path}: counter {name!r} has a negative sample")
    n = sum(len(p) for p in series.values())
    print(f"check_trace: OK: {len(series)} counter track(s), "
          f"{n} sample(s)")


def check_swarm(path: str) -> None:
    """espnuca-top --perfetto swarm timeline."""
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")
    tracks = {e.get("args", {}).get("name") for e in events
              if e.get("ph") == "M" and e.get("name") == "process_name"}
    shards = {t for t in tracks if t and t.startswith("shard-")}
    if "supervisor" not in tracks:
        fail(f"{path}: no supervisor track metadata")
    if not shards:
        fail(f"{path}: no shard-<i> track metadata")
    slices = [e for e in events
              if e.get("ph") == "X" and e.get("cat") == "point"]
    if not slices:
        fail(f"{path}: no completed-point slice (ph=X, cat=point)")
    for s in slices:
        h = s.get("args", {}).get("point_hash", "")
        if len(h) != 16 or any(c not in "0123456789abcdef" for c in h):
            fail(f"{path}: slice {s.get('name')!r} has a malformed "
                 f"point_hash {h!r}")
        if s.get("dur", -1) < 0:
            fail(f"{path}: slice {s.get('name')!r} has no duration")
    print(f"check_trace: OK: {len(shards)} shard track(s), "
          f"{len(slices)} point slice(s)")


def crc32c(data: bytes) -> int:
    """CRC-32C (Castagnoli), reflected — the trailer algorithm of
    common/crc32c.hpp. zlib.crc32 is CRC-32/IEEE, a different
    polynomial, so the table is built here."""
    table = getattr(crc32c, "_table", None)
    if table is None:
        table = []
        for i in range(256):
            c = i
            for _ in range(8):
                c = (c >> 1) ^ 0x82F63B78 if c & 1 else c >> 1
            table.append(c)
        crc32c._table = table
    crc = 0xFFFFFFFF
    for b in data:
        crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def split_crc_trailer(line: str):
    """Strip the ,"crc32c":"hhhhhhhh" content trailer (json.hpp
    framing). Returns (body, ok)."""
    suffix_len = len(',"crc32c":"00000000"}')
    if len(line) < suffix_len or not line.endswith("\"}"):
        return None, False
    tag = line[-suffix_len:-suffix_len + len(',"crc32c":"')]
    if tag != ',"crc32c":"':
        return None, False
    hexpart = line[-10:-2]
    body = line[:-suffix_len] + "}"
    try:
        stored = int(hexpart, 16)
    except ValueError:
        return None, False
    return (body, True) if crc32c(body.encode()) == stored else (None,
                                                                 False)


def check_ledger(paths: list) -> None:
    """espnuca-events-v1 JSONL ledgers: CRC-valid lines, monotonic seq
    per writer, one run id, every started point reaches a terminal
    event across all given files."""
    run_ids = set()
    started: dict = {}
    terminal = set()
    total = 0
    torn = 0
    for path in paths:
        last_seq: dict = {}  # per-pid; restarts reuse the file
        with open(path) as f:
            lines = [ln.rstrip("\n") for ln in f if ln.strip()]
        if not lines:
            fail(f"{path}: empty ledger")
        for i, line in enumerate(lines):
            body, ok = split_crc_trailer(line)
            if not ok:
                # A SIGKILL can tear at most the final line of a
                # writer's file; anywhere else is corruption.
                if i == len(lines) - 1:
                    torn += 1
                    continue
                fail(f"{path}:{i + 1}: CRC mismatch on a non-final "
                     f"line")
            rec = json.loads(body)
            if rec.get("schema") != "espnuca-events-v1":
                fail(f"{path}:{i + 1}: wrong schema "
                     f"{rec.get('schema')!r}")
            for field in ("run", "seq", "wall_ms", "pid", "role",
                          "shard", "event", "build"):
                if field not in rec:
                    fail(f"{path}:{i + 1}: missing field {field!r}")
            pid = rec["pid"]
            if rec["seq"] <= last_seq.get(pid, 0):
                fail(f"{path}:{i + 1}: seq {rec['seq']} of pid {pid} "
                     f"not above {last_seq[pid]}")
            last_seq[pid] = rec["seq"]
            run_ids.add(rec["run"])
            total += 1
            ev = rec["event"]
            h = rec.get("point_hash")
            if h is not None:
                if len(h) != 16 or any(c not in "0123456789abcdef"
                                       for c in h):
                    fail(f"{path}:{i + 1}: malformed point_hash {h!r}")
                if ev == "point-start":
                    started[h] = f"{path}:{i + 1}"
                elif ev in TERMINAL_EVENTS:
                    terminal.add(h)
    if len(run_ids) != 1:
        fail(f"ledgers disagree on run id: {sorted(run_ids)}")
    unresolved = {h: where for h, where in started.items()
                  if h not in terminal}
    if unresolved:
        sample = "; ".join(f"{h} (started at {w})"
                           for h, w in list(unresolved.items())[:8])
        fail(f"{len(unresolved)} started point(s) never reached a "
             f"terminal ledger event: {sample}")
    print(f"check_trace: OK: {total} ledger record(s) across "
          f"{len(paths)} file(s), run {run_ids.pop()}, "
          f"{len(started)} point-start(s) all terminal, "
          f"{torn} torn tail line(s) tolerated")


def main(argv: list) -> None:
    if len(argv) >= 2 and argv[1] == "--counters":
        if len(argv) != 3:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_counters(argv[2])
        return
    if len(argv) >= 2 and argv[1] == "--swarm":
        if len(argv) != 3:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_swarm(argv[2])
        return
    if len(argv) >= 2 and argv[1] == "--ledger":
        if len(argv) < 3:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_ledger(argv[2:])
        return
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_trace(argv[1])
    if len(argv) == 3:
        check_run(argv[2])


if __name__ == "__main__":
    main(sys.argv)
