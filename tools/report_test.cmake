# espnuca-report acceptance: a self-diff is clean (exit 0 even under
# --check), an injected beyond-threshold regression trips --check
# (exit 1), and the --json report parses and names the regressed
# metric. The documents are crafted here so the test exercises both
# direction heuristics (ns_per_* lower-better, *_per_sec higher-better)
# without depending on bench runtimes.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

file(WRITE ${WORKDIR}/baseline.json [[
{
  "protocol": {
    "esp_nuca": { "ns_per_transaction": 100.0 },
    "snuca": { "ns_per_transaction": 120.0 }
  },
  "throughput": { "points_per_sec": 50.0 }
}
]])

# Self-diff: identical documents must never report a regression.
execute_process(
    COMMAND ${REPORT} --baseline ${WORKDIR}/baseline.json
            --new ${WORKDIR}/baseline.json --check
    RESULT_VARIABLE r
    OUTPUT_QUIET
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "self-diff: expected exit 0, got ${r}")
endif()

# +30% on a lower-is-better metric and -40% on a higher-is-better one:
# both must be flagged under the default threshold.
file(WRITE ${WORKDIR}/regressed.json [[
{
  "protocol": {
    "esp_nuca": { "ns_per_transaction": 130.0 },
    "snuca": { "ns_per_transaction": 120.0 }
  },
  "throughput": { "points_per_sec": 30.0 }
}
]])
execute_process(
    COMMAND ${REPORT} --baseline ${WORKDIR}/baseline.json
            --new ${WORKDIR}/regressed.json --check
    RESULT_VARIABLE r
    OUTPUT_QUIET
)
if(NOT r EQUAL 1)
    message(FATAL_ERROR "injected regression: expected exit 1, got ${r}")
endif()

# Without --check the regression is reported but the exit stays 0 —
# report mode never gates.
execute_process(
    COMMAND ${REPORT} --baseline ${WORKDIR}/baseline.json
            --new ${WORKDIR}/regressed.json
    RESULT_VARIABLE r
    OUTPUT_QUIET
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "report mode: expected exit 0, got ${r}")
endif()

# The machine-readable report parses and names the regressed metric.
execute_process(
    COMMAND ${REPORT} --baseline ${WORKDIR}/baseline.json
            --new ${WORKDIR}/regressed.json --json
    RESULT_VARIABLE r
    OUTPUT_VARIABLE report_json
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "--json report failed: ${r}")
endif()
string(JSON schema GET "${report_json}" schema)
if(NOT schema STREQUAL "espnuca-report-v1")
    message(FATAL_ERROR "unexpected report schema: ${schema}")
endif()
string(JSON regressions GET "${report_json}" regressions)
if(regressions LESS 2)
    message(FATAL_ERROR
            "expected both injected regressions flagged, got "
            "${regressions}:\n${report_json}")
endif()
string(FIND "${report_json}" "protocol.esp_nuca.ns_per_transaction"
       found)
if(found EQUAL -1)
    message(FATAL_ERROR
            "report does not name the regressed metric:\n${report_json}")
endif()

# A metric deleted from the new document still counts as a regression —
# the guard cannot be silenced by dropping what it guards.
file(WRITE ${WORKDIR}/missing.json [[
{
  "protocol": {
    "snuca": { "ns_per_transaction": 120.0 }
  },
  "throughput": { "points_per_sec": 50.0 }
}
]])
execute_process(
    COMMAND ${REPORT} --baseline ${WORKDIR}/baseline.json
            --new ${WORKDIR}/missing.json --check
    RESULT_VARIABLE r
    OUTPUT_QUIET
)
if(NOT r EQUAL 1)
    message(FATAL_ERROR "missing metric: expected exit 1, got ${r}")
endif()

# --only scopes the diff: restricted to the untouched snuca subtree the
# regressed document is clean.
execute_process(
    COMMAND ${REPORT} --baseline ${WORKDIR}/baseline.json
            --new ${WORKDIR}/regressed.json --check
            --only protocol.snuca
    RESULT_VARIABLE r
    OUTPUT_QUIET
)
if(NOT r EQUAL 0)
    message(FATAL_ERROR "--only scope: expected exit 0, got ${r}")
endif()

file(REMOVE_RECURSE ${WORKDIR})
