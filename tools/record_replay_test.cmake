# Integration test: capture a workload's streams to trace files, then
# replay them through a different architecture; both runs must complete.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(
    COMMAND ${SIM} --arch shared --workload gzip-4 --ops 2000
            --warmup 0 --record-trace ${WORKDIR}
    RESULT_VARIABLE rec_result
)
if(NOT rec_result EQUAL 0)
    message(FATAL_ERROR "record run failed: ${rec_result}")
endif()

file(GLOB traces ${WORKDIR}/core*.trace)
list(LENGTH traces n)
if(n LESS 4)
    message(FATAL_ERROR "expected >= 4 trace files, got ${n}")
endif()

execute_process(
    COMMAND ${SIM} --arch esp-nuca --replay-trace ${WORKDIR}
            --warmup 0 --csv
    RESULT_VARIABLE rep_result
    OUTPUT_VARIABLE rep_out
)
if(NOT rep_result EQUAL 0)
    message(FATAL_ERROR "replay run failed: ${rep_result}")
endif()
string(FIND "${rep_out}" "esp-nuca,replay:" found)
if(found EQUAL -1)
    message(FATAL_ERROR "replay output missing expected row: ${rep_out}")
endif()
file(REMOVE_RECURSE ${WORKDIR})
