/**
 * @file
 * Quickstart: build an 8-core CMP with an ESP-NUCA L2, run a mixed
 * workload, and print the headline metrics. This is the 20-line tour of
 * the public API: SystemConfig -> makeWorkload -> System -> RunResult.
 */

#include <cstdio>

#include "harness/system.hpp"

using namespace espnuca;

int
main()
{
    // Table 2 system: 8 OoO cores, 8 MB L2 in 32 NUCA banks, 4x3 mesh.
    SystemConfig cfg;

    // A transactional workload preset (Apache) with 80k references per
    // core, seeded for exact reproducibility.
    const Workload wl = makeWorkload("apache", cfg, 80'000, /*seed=*/1);

    // Assemble and run the ESP-NUCA system.
    // Warm the caches over the first half; statistics cover the rest.
    System sys(cfg, "esp-nuca", wl, /*seed=*/1, /*warmup=*/0.5);
    const RunResult r = sys.run();

    std::printf("architecture     : %s\n", r.arch.c_str());
    std::printf("workload         : %s\n", r.workload.c_str());
    std::printf("cycles           : %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions     : %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("throughput (IPC) : %.3f instructions/cycle (chip)\n",
                r.throughput);
    std::printf("avg access time  : %.2f cycles/reference\n",
                r.avgAccessTime);
    std::printf("off-chip accesses: %llu\n",
                static_cast<unsigned long long>(r.offChipAccesses));
    std::printf("L2 demand hit %%  : %.1f\n",
                r.l2DemandAccesses
                    ? 100.0 * static_cast<double>(r.l2DemandHits) /
                          static_cast<double>(r.l2DemandAccesses)
                    : 0.0);
    std::printf("mean nmax        : %.2f helping blocks/set allowed\n",
                r.meanNmax);

    std::printf("\naccess-time decomposition (cycles/reference):\n");
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(ServiceLevel::kNumLevels); ++i) {
        std::printf("  %-18s %8.3f  (%llu refs)\n",
                    toString(static_cast<ServiceLevel>(i)),
                    r.levelContribution[i],
                    static_cast<unsigned long long>(r.levelCounts[i]));
    }
    return 0;
}
