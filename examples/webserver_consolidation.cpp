/**
 * @file
 * Scenario: a consolidated web-server box (the paper's motivating
 * transactional case). Compare the three cache philosophies — shared,
 * private, and ESP-NUCA — on the same Apache-like workload and show
 * where each one's time goes.
 */

#include <cstdio>

#include "harness/system.hpp"

using namespace espnuca;

int
main()
{
    SystemConfig cfg;
    const std::uint64_t ops = 100'000;

    std::printf("Consolidated web server (apache preset), %llu refs/core"
                ", 8 cores\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%-10s %10s %12s %10s %10s %10s\n", "arch", "IPC(chip)",
                "access(cyc)", "offchip", "onchipLat", "L2hit%");

    for (const char *arch : {"shared", "private", "esp-nuca"}) {
        const Workload wl = makeWorkload("apache", cfg, ops, 1);
        System sys(cfg, arch, wl, 1, /*warmup=*/0.5);
        const RunResult r = sys.run();
        std::printf("%-10s %10.3f %12.2f %10llu %10.2f %10.1f\n", arch,
                    r.throughput, r.avgAccessTime,
                    static_cast<unsigned long long>(r.offChipAccesses),
                    r.onChipLatency,
                    r.l2DemandAccesses
                        ? 100.0 * static_cast<double>(r.l2DemandHits) /
                              static_cast<double>(r.l2DemandAccesses)
                        : 0.0);
    }

    std::printf(
        "\nReading the table: the shared L2 keeps off-chip traffic low "
        "but pays\nremote-bank latency on every shared hit; the private "
        "tiles are fast but\nmiss more; ESP-NUCA replicates hot shared "
        "blocks locally (replicas) while\nkeeping one authoritative home "
        "copy, landing near-private latency at\nnear-shared miss "
        "rates.\n");
    return 0;
}
