/**
 * @file
 * Scenario: exploring the QoS knob the paper leaves as future work
 * (Section 5.2). The `d` parameter bounds how much first-class hit rate
 * may be sacrificed for helping blocks: small d (tight tolerance)
 * protects first-class data, large d invites cooperation. This example
 * sweeps d on a replica-heavy transactional mix and reports how the
 * equilibrium nmax, the helping-block population and performance move.
 */

#include <cstdio>

#include "harness/system.hpp"

using namespace espnuca;

int
main()
{
    const std::uint64_t ops = 80'000;

    std::printf("QoS exploration: ESP-NUCA d-parameter sweep on apache\n");
    std::printf("(d bounds the tolerated first-class hit-rate "
                "degradation: 2^-d)\n\n");
    std::printf("%-14s %10s %10s %10s %12s %12s\n", "d (tolerance)",
                "chip IPC", "offchip", "mean nmax", "replicas",
                "victims");

    for (std::uint32_t d : {1u, 2u, 3u, 4u, 6u}) {
        SystemConfig cfg;
        cfg.degradationShift = d;
        const Workload wl = makeWorkload("apache", cfg, ops, 1);
        System sys(cfg, "esp-nuca", wl, 1, /*warmup=*/0.5);
        const RunResult r = sys.run();
        auto &esp = dynamic_cast<EspNuca &>(sys.org());
        const double tol = 100.0 / (1u << d);
        std::printf("d=%u (%5.1f%%)  %10.3f %10llu %10.2f %12llu %12llu\n",
                    d, tol, r.throughput,
                    static_cast<unsigned long long>(r.offChipAccesses),
                    r.meanNmax,
                    static_cast<unsigned long long>(
                        esp.replicasCreated()),
                    static_cast<unsigned long long>(
                        esp.victimsCreated()));
    }

    std::printf(
        "\nLarger d tolerates more first-class degradation, so nmax "
        "settles higher and\nmore helping blocks survive; smaller d "
        "converges toward plain SP-NUCA. The\npaper proposes driving d "
        "dynamically as a QoS policy hook [11] — this knob is\nthe "
        "entire mechanism such a policy would actuate.\n");
    return 0;
}
