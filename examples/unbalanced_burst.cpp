/**
 * @file
 * Scenario: unbalanced core utilization — one memory-hungry thread
 * beside idle cores (the paper's Section 3.1 limit case). A private
 * organization strands 7/8 of the cache; ESP-NUCA's victims let the
 * busy core's working set overflow into the idle cores' shared space.
 * The example also samples the victim population over time to show the
 * on-line adaptation at work.
 */

#include <cstdio>

#include "harness/system.hpp"

using namespace espnuca;

namespace {

Workload
singleHeavyThread(const SystemConfig &cfg, std::uint64_t ops)
{
    Workload w;
    w.name = "single-burst";
    w.cores.resize(cfg.numCores);
    for (CoreId c = 0; c < cfg.numCores; ++c)
        w.cores[c].coreId = c;
    StreamParams &p = w.cores[0];
    p.ops = ops;
    p.gapMean = 2.0;
    p.ifetchFraction = 0.05;
    p.hotBytes = 3 << 20; // 3 MB: overflows the 1 MB private partition
    p.zipfTheta = 0.45;
    p.writeFraction = 0.2;
    p.depFraction = 0.3;
    p.coreId = 0;
    return w;
}

} // namespace

int
main()
{
    SystemConfig cfg;
    const std::uint64_t ops = 120'000;

    std::printf("One 3 MB-working-set thread on core 0, cores 1-7 idle "
                "(%llu refs)\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%-10s %10s %10s %12s\n", "arch", "IPC(core0)",
                "offchip", "victims");

    for (const char *arch : {"private", "shared", "esp-nuca"}) {
        const Workload wl = singleHeavyThread(cfg, ops);
        System sys(cfg, arch, wl, 1, /*warmup=*/0.4);
        const RunResult r = sys.run();
        std::uint64_t victims = 0;
        if (auto *esp = dynamic_cast<EspNuca *>(&sys.org()))
            victims = esp->victimsCreated();
        std::printf("%-10s %10.3f %10llu %12llu\n", arch, r.avgIpc,
                    static_cast<unsigned long long>(r.offChipAccesses),
                    static_cast<unsigned long long>(victims));
    }

    // Watch the victim population and nmax adapt during an ESP run.
    std::printf("\nESP-NUCA adaptation during the run (victims live in "
                "the idle cores' shared space):\n");
    std::printf("%-12s %14s %12s %10s\n", "cycle", "victims-resident",
                "victims-made", "mean-nmax");
    const Workload wl = singleHeavyThread(cfg, ops);
    System sys(cfg, "esp-nuca", wl, 1);
    auto &esp = dynamic_cast<EspNuca &>(sys.org());
    sys.startCores();
    EventQueue &eq = sys.eq();
    for (int chunk = 1; chunk <= 8 && !eq.empty(); ++chunk) {
        eq.runUntil(chunk * 150'000ULL);
        std::uint64_t resident = 0;
        for (BankId b = 0; b < esp.numBanks(); ++b)
            resident += esp.bank(b).countClass(BlockClass::Victim);
        std::printf("%-12llu %14llu %12llu %10.2f\n",
                    static_cast<unsigned long long>(eq.now()),
                    static_cast<unsigned long long>(resident),
                    static_cast<unsigned long long>(
                        esp.victimsCreated()),
                    esp.meanNmax());
    }
    eq.run();
    std::uint64_t resident = 0;
    for (BankId b = 0; b < esp.numBanks(); ++b)
        resident += esp.bank(b).countClass(BlockClass::Victim);
    std::printf("%-12llu %14llu %12llu %10.2f  (end)\n",
                static_cast<unsigned long long>(eq.now()),
                static_cast<unsigned long long>(resident),
                static_cast<unsigned long long>(esp.victimsCreated()),
                esp.meanNmax());
    std::printf("\nExpected: victims accumulate in remote home banks, "
                "turning the idle 7 MB\ninto a victim cache for core 0; "
                "private strands that capacity entirely.\n");
    return 0;
}
